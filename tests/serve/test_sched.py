"""Continuous batching: page pool accounting, paged caches, the scheduler.

The correctness bar for the whole subsystem is *bit-identity*: a stream
decoded through the paged pool — batched with strangers, preempted,
resumed — must emit exactly the tokens the serial ``generate`` path
emits.  Every test here ultimately reduces to that assertion plus page
accounting (checkouts == releases, zero leaks at close).
"""

import threading
import time

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.models.gpt import GPT, GPTConfig
from repro.nn.decode import (
    KVCache,
    PagedKVCache,
    batched_causal_decode_step,
    causal_decode_step,
    init_causal_decode_state,
    init_paged_decode_state,
    requantize_tails,
    supports_batched_decode,
)
from repro.nn.tensor import no_grad
from repro.serve import (
    DeadlineExceeded,
    InjectedFault,
    PagePool,
    PoolExhausted,
    QueueFull,
    SessionConfig,
    compile_model,
    configure_faults,
    inject_faults,
)
from repro.spec.serving import SchedulerConfig

SMALL = GPTConfig(dim=16, num_layers=2, num_heads=2, max_len=64)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    previous = configure_faults(None)
    yield
    configure_faults(previous)


@pytest.fixture(scope="module")
def lang():
    return SyntheticLanguage(seed=0)


@pytest.fixture(scope="module")
def compiled(lang):
    model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
    return compile_model(model, "mx6")


def ragged_requests(lang, n, seed=3, max_new=8):
    rng = np.random.default_rng(seed)
    return [
        {
            "task": "generate",
            "prompt": rng.integers(1, lang.vocab_size, size=int(rng.integers(3, 20))).tolist(),
            "max_new_tokens": max_new,
        }
        for _ in range(n)
    ]


def serial_truth(compiled, requests):
    return [
        list(
            compiled.adapter.generate_stream(
                np.asarray(r["prompt"]), r["max_new_tokens"]
            )
        )
        for r in requests
    ]


# ----------------------------------------------------------------------
# PagePool accounting
# ----------------------------------------------------------------------
class TestPagePool:
    def test_checkout_release_roundtrip(self):
        pool = PagePool(num_heads=2, head_dim=4, page_size=16, total_pages=8)
        pages = pool.checkout_pages("a", 3)
        assert len(pages) == 3 and len(set(pages)) == 3
        assert pool.pages_free() == 5
        assert pool.pages_held("a") == 3
        pool.release_pages("a", pages[:2])
        assert pool.pages_free() == 7
        assert pool.release_all("a") == 1
        assert pool.pages_free() == 8
        assert pool.leaked() == {}
        stats = pool.stats()
        assert stats["checkouts"] == 3 and stats["releases"] == 3
        assert stats["high_water"] == 3
        assert stats["per_stream_high_water"] == 3

    def test_exhaustion_is_atomic(self):
        pool = PagePool(num_heads=2, head_dim=4, page_size=16, total_pages=4)
        pool.checkout_pages("a", 3)
        with pytest.raises(PoolExhausted):
            pool.checkout_pages("b", 2)  # only 1 free: must take none
        assert pool.pages_free() == 1
        assert pool.pages_held("b") == 0

    def test_foreign_release_rejected(self):
        pool = PagePool(num_heads=2, head_dim=4, page_size=16, total_pages=4)
        page = pool.checkout_page("a")
        with pytest.raises(ValueError):
            pool.release_page("b", page)
        with pytest.raises(ValueError):
            pool.release_page("a", page + 1)
        pool.release_page("a", page)
        assert pool.leaked() == {}

    def test_leak_detection(self):
        pool = PagePool(num_heads=2, head_dim=4, page_size=16, total_pages=4)
        pool.checkout_pages("s0", 2)
        assert pool.leaked() == {"s0": 2}


# ----------------------------------------------------------------------
# PagedKVCache: drop-in bit-identity with the contiguous KVCache
# ----------------------------------------------------------------------
class TestPagedDecode:
    def test_serial_paged_decode_bit_identical(self, compiled, lang):
        model = compiled.model
        pool = PagePool(
            SMALL.num_heads, SMALL.dim // SMALL.num_heads, 16, total_pages=32
        )
        rng = np.random.default_rng(7)
        prompt = rng.integers(1, lang.vocab_size, size=11)
        with no_grad():
            stock = init_causal_decode_state(model)
            paged = init_paged_decode_state(model, pool, "s0")
            window = list(prompt)
            for _ in range(6):
                tokens = np.asarray(window, dtype=np.int64)[None]
                a = causal_decode_step(model, tokens, stock).data
                b = causal_decode_step(model, tokens, paged).data
                np.testing.assert_array_equal(a, b)
                window.append(int(np.argmax(a[0, -1])))
        for kv in paged.layers:
            kv.free()
        assert pool.leaked() == {}
        stats = pool.stats()
        assert stats["checkouts"] == stats["releases"] > 0

    def test_rewind_then_reappend_bit_identical(self, compiled, lang):
        """Preemption's rewind/recompute path reproduces the sealed state."""
        model = compiled.model
        pool = PagePool(
            SMALL.num_heads, SMALL.dim // SMALL.num_heads, 16, total_pages=32
        )
        rng = np.random.default_rng(11)
        window = rng.integers(1, lang.vocab_size, size=21)
        with no_grad():
            once = init_paged_decode_state(model, pool, "a")
            a = causal_decode_step(model, window[None], once).data
            # decode partway, throw the pages away, re-prefill from scratch
            twice = init_paged_decode_state(model, pool, "b")
            causal_decode_step(model, window[None, :9], twice).data
            for kv in twice.layers:
                kv.free()
            twice = init_paged_decode_state(model, pool, "b")
            twice.position = 0
            b = causal_decode_step(model, window[None], twice).data
        np.testing.assert_array_equal(a, b)
        for state in (once, twice):
            for kv in state.layers:
                kv.free()
        assert pool.leaked() == {}

    def test_page_size_must_match_block(self, compiled):
        pool = PagePool(SMALL.num_heads, SMALL.dim // SMALL.num_heads, 8, 8)
        block = compiled.model.blocks[0].attn
        with pytest.raises(ValueError):
            PagedKVCache(
                pool, "s0", SMALL.num_heads, SMALL.dim // SMALL.num_heads,
                capacity=64, spec=block.quant,
            )

    def test_supports_batched_decode(self, compiled, lang):
        with no_grad():
            assert supports_batched_decode(compiled.model)
        fp32 = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
        with no_grad():
            assert not supports_batched_decode(fp32)

    def test_batched_ragged_step_bit_identical(self, compiled, lang):
        model = compiled.model
        pool = PagePool(
            SMALL.num_heads, SMALL.dim // SMALL.num_heads, 16, total_pages=64
        )
        rng = np.random.default_rng(5)
        windows = [
            rng.integers(1, lang.vocab_size, size=int(n))
            for n in rng.integers(3, 30, size=5)
        ]
        with no_grad():
            serial = []
            for i, window in enumerate(windows):
                state = init_paged_decode_state(model, pool, f"serial{i}")
                serial.append(
                    causal_decode_step(model, window[None], state).data[0, -1]
                )
                for kv in state.layers:
                    kv.free()
            states = [
                init_paged_decode_state(model, pool, f"batched{i}")
                for i in range(len(windows))
            ]
            logits = batched_causal_decode_step(model, windows, states)
        np.testing.assert_array_equal(logits, np.stack(serial))
        for state in states:
            for kv in state.layers:
                kv.free()
        assert pool.leaked() == {}

    def test_grouped_tail_requantize_bit_identical(self, compiled, lang):
        """``requantize_tails`` grouping == one deferred-append + requant each.

        The fused step batches open-tail V requantization across streams;
        this pins the claim that grouping is invisible in the payload bits.
        """
        model = compiled.model
        head_dim = SMALL.dim // SMALL.num_heads
        rng = np.random.default_rng(13)
        lens = [1, 3, 3, 7, 1, 12, 7]
        with no_grad():
            solo_pool = PagePool(SMALL.num_heads, head_dim, 16, total_pages=32)
            grouped_pool = PagePool(SMALL.num_heads, head_dim, 16, total_pages=32)
            spec = model.blocks[0].attn.quant
            solo, grouped = [], []
            for i, n in enumerate(lens):
                k = rng.normal(size=(1, SMALL.num_heads, n, head_dim))
                v = rng.normal(size=(1, SMALL.num_heads, n, head_dim))
                a = PagedKVCache(
                    solo_pool, f"s{i}", SMALL.num_heads, head_dim, 64, spec
                )
                a.append(k, v, spec=spec)
                solo.append(a)
                b = PagedKVCache(
                    grouped_pool, f"s{i}", SMALL.num_heads, head_dim, 64, spec
                )
                b.append(k, v, spec=spec, defer_tail=True)
                grouped.append(b)
            requantize_tails(grouped)
            for a, b in zip(solo, grouped):
                np.testing.assert_array_equal(a.values, b.values)
                np.testing.assert_array_equal(a.keys_t, b.keys_t)
                a.free()
                b.free()
        assert solo_pool.leaked() == grouped_pool.leaked() == {}


# ----------------------------------------------------------------------
# SchedulerConfig
# ----------------------------------------------------------------------
class TestSchedulerConfig:
    def test_roundtrip(self):
        cfg = SchedulerConfig(max_streams=8, page_budget=40, max_waiting=4)
        assert SchedulerConfig.from_dict(cfg.to_dict()) == cfg

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            SchedulerConfig.from_dict({"max_streams": 8, "bogus": 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_streams=0)
        with pytest.raises(ValueError):
            SchedulerConfig(starvation_age_s=-1.0)

    def test_session_config_canonicalizes(self):
        # stored as the canonical to_dict payload (JSON-friendly, like policy)
        cfg = SessionConfig(scheduler=SchedulerConfig(max_streams=4))
        assert cfg.scheduler == SchedulerConfig(max_streams=4).to_dict()
        assert SessionConfig.from_dict(cfg.to_dict()).scheduler == cfg.scheduler
        assert SessionConfig().scheduler is None
        with pytest.raises(ValueError):
            SessionConfig(scheduler={"max_streams": 0})

    def test_page_size_mismatch_rejected(self, compiled):
        cfg = SessionConfig(format="mx6", scheduler={"page_size": 8})
        with pytest.raises(ValueError):
            compiled.session(cfg)


# ----------------------------------------------------------------------
# The scheduler end to end
# ----------------------------------------------------------------------
class TestContinuousScheduler:
    def test_concurrent_streams_bit_identical(self, compiled, lang):
        requests = ragged_requests(lang, 24)
        truth = serial_truth(compiled, requests)
        cfg = SessionConfig(format="mx6", scheduler={"max_streams": 24})
        with compiled.session(cfg) as session:
            results = session.map(requests)
            summary = session.summary()
            pool = session._sched.pool
        assert [r["tokens"] for r in results] == truth
        sched = summary["sched"]
        assert sched["completed"] == len(requests)
        assert sched["serial_steps"] == 0  # mx6 certifies the fused step
        assert sched["slo"]["ttft_ms"]["p50"] >= 0.0
        assert summary["decode"]["tokens"] == sum(len(t) for t in truth)
        assert pool.leaked() == {}

    def test_preemption_under_page_pressure_bit_identical(self, compiled, lang):
        requests = ragged_requests(lang, 16, seed=9)
        truth = serial_truth(compiled, requests)
        # 2 layers x up to 4 pages/stream: 12 pages sustain ~2 streams, so
        # admission + growth must preempt constantly
        cfg = SessionConfig(
            format="mx6", scheduler={"max_streams": 8, "page_budget": 12}
        )
        with compiled.session(cfg) as session:
            results = session.map(requests)
            sched = session.summary()["sched"]
            pool = session._sched.pool
        assert [r["tokens"] for r in results] == truth
        assert sched["preempted"] > 0
        assert sched["resumed"] > 0
        assert pool.leaked() == {}
        assert pool.stats()["pages_used"] == 0

    def test_request_larger_than_pool_fails_terminally(self, compiled, lang):
        cfg = SessionConfig(
            format="mx6", scheduler={"max_streams": 4, "page_budget": 2}
        )
        request = {
            "task": "generate",
            "prompt": list(range(1, 40)),  # needs 3 pages/layer from step 1
            "max_new_tokens": 4,
        }
        with compiled.session(cfg) as session:
            with pytest.raises(PoolExhausted):
                session.submit(request).result(timeout=30)

    def test_deadline_enforced_while_waiting(self, compiled, lang):
        cfg = SessionConfig(format="mx6", scheduler={"max_streams": 4})
        with inject_faults("sched.admit:kind=transient,rate=1.0"):
            with compiled.session(cfg) as session:
                future = session.submit(
                    {"task": "generate", "prompt": [1, 2, 3], "max_new_tokens": 4},
                    timeout=0.05,
                )
                with pytest.raises(DeadlineExceeded):
                    future.result(timeout=30)
                assert session.metrics.events()["timeouts"] >= 1

    def test_queue_cap_rejects(self, compiled, lang):
        cfg = SessionConfig(
            format="mx6",
            shed_policy="reject",
            scheduler={"max_streams": 4, "max_waiting": 1},
        )
        # a permanent transient admit fault pins everything in the queue
        with inject_faults("sched.admit:kind=transient,rate=1.0"):
            with compiled.session(cfg) as session:
                first = session.submit(
                    {"task": "generate", "prompt": [1, 2], "max_new_tokens": 2}
                )
                with pytest.raises(QueueFull):
                    session.submit(
                        {"task": "generate", "prompt": [3, 4], "max_new_tokens": 2}
                    )
                assert session.metrics.events()["sheds"] >= 1
                first.cancel()

    def test_admit_fault_fails_only_that_request(self, compiled, lang):
        requests = ragged_requests(lang, 6, seed=13)
        truth = serial_truth(compiled, requests)
        cfg = SessionConfig(format="mx6", scheduler={"max_streams": 2})
        with inject_faults("sched.admit:kind=error,rate=1.0,limit=1"):
            with compiled.session(cfg) as session:
                futures = [session.submit(r) for r in requests]
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append(future.result(timeout=60))
                    except InjectedFault as error:
                        outcomes.append(error)
                sched = session.summary()["sched"]
        failed = [o for o in outcomes if isinstance(o, InjectedFault)]
        assert len(failed) == 1
        assert sched["admit_faults"] == 1
        for outcome, tokens in zip(outcomes, truth):
            if not isinstance(outcome, InjectedFault):
                assert outcome["tokens"] == tokens

    def test_health_kv_during_decode(self, compiled, lang):
        """health()['kv'] reads only the pool's own lock, so it answers
        while the decode loop is mid-storm."""
        requests = ragged_requests(lang, 12, seed=17, max_new=12)
        cfg = SessionConfig(format="mx6", scheduler={"max_streams": 12})
        snapshots = []
        with compiled.session(cfg) as session:
            futures = [session.submit(r) for r in requests]
            for _ in range(50):
                snapshots.append(session.health()["kv"])
                if all(f.done() for f in futures):
                    break
                time.sleep(0.002)
            for future in futures:
                future.result(timeout=60)
            final = session.health()["kv"]
        assert all(s["enabled"] for s in snapshots)
        assert any(s["pages_used"] > 0 for s in snapshots)
        assert final["pages_used"] == 0
        assert final["high_water"] > 0
        assert final["per_stream_high_water"] >= 1

    def test_health_kv_disabled_without_scheduler(self, compiled):
        with compiled.session(SessionConfig(format="mx6")) as session:
            assert session.health()["kv"] == {"enabled": False}

    def test_non_generate_and_oversized_stay_on_classic_path(self, compiled, lang):
        cfg = SessionConfig(format="mx6", scheduler={"max_streams": 4})
        rng = np.random.default_rng(0)
        with compiled.session(cfg) as session:
            score = session.submit(
                {
                    "task": "score",
                    "context": lang.sample_sequence(6, rng),
                    "candidates": [lang.sample_sequence(3, rng)],
                }
            ).result(timeout=60)
            assert "scores" in score
            # prompt + budget beyond the window: sliding-window fallback
            long = session.submit(
                {
                    "task": "generate",
                    "prompt": rng.integers(1, lang.vocab_size, size=59).tolist(),
                    "max_new_tokens": 30,
                }
            ).result(timeout=60)
            sched = session.summary()["sched"]
        assert len(long["tokens"]) == 30
        assert sched["completed"] == 0  # neither request rode the scheduler

    def test_close_fails_waiting_streams(self, compiled, lang):
        from repro.serve import SessionClosed

        cfg = SessionConfig(format="mx6", scheduler={"max_streams": 2})
        with inject_faults("sched.admit:kind=transient,rate=1.0"):
            session = compiled.session(cfg)
            future = session.submit(
                {"task": "generate", "prompt": [1, 2, 3], "max_new_tokens": 4}
            )
            session.close()
            with pytest.raises(SessionClosed):
                future.result(timeout=10)
        assert session._sched.pool.leaked() == {}


# ----------------------------------------------------------------------
# Satellite: ragged-prompt serial fallbacks are counted on the classic path
# ----------------------------------------------------------------------
class TestSerialFallbackCounter:
    def test_ragged_generate_batch_counts_fallbacks(self, compiled, lang):
        # classic micro-batched path (no scheduler): ragged prompts group
        # into singletons, each one a serial fallback
        requests = [
            {"task": "generate", "prompt": list(range(1, 4 + i)), "max_new_tokens": 2}
            for i in range(4)
        ]
        cfg = SessionConfig(format="mx6", max_batch=4, max_wait=0.05)
        with compiled.session(cfg) as session:
            session.map(requests)
            summary = session.summary()
        assert summary["decode"]["serial_fallbacks"] >= 4

    def test_equal_shapes_count_no_fallbacks(self, compiled, lang):
        requests = [
            {"task": "generate", "prompt": [1, 2, 3, 4], "max_new_tokens": 2}
            for _ in range(4)
        ]
        cfg = SessionConfig(format="mx6", max_batch=4, max_wait=0.05)
        with compiled.session(cfg) as session:
            session.map(requests)
            summary = session.summary()
        # no fallbacks (and no streamed tokens) => no decode section at all
        assert summary.get("decode", {}).get("serial_fallbacks", 0) == 0
