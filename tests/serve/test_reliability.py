"""Hardened session lifecycle: deadlines, backpressure, retries, bisection,
watchdog, and shutdown guarantees.

Runs on a deterministic echo model family so every failure is *scripted*
by the request payload (``sleep`` stalls the worker, ``boom`` raises) or
by a seeded fault plan — no timing lotteries, no real model cost.
"""

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro.nn.layers import Module
from repro.serve import (
    DeadlineExceeded,
    QueueFull,
    RequestShed,
    SessionClosed,
    TaskAdapter,
    TransientFault,
    WorkerHung,
    compile_model,
    configure_faults,
    inject_faults,
    register_adapter,
)


class EchoModel(Module):
    """A parameterless model family for scripting serving behavior."""


class EchoAdapter(TaskAdapter):
    tasks = ("classify", "generate")

    def __init__(self, model):
        super().__init__(model)
        self.calls = 0  # run_batch executions (bisection observability)

    def run_batch(self, requests):
        self.calls += 1
        return super().run_batch(requests)

    def classify(self, payloads):
        out = []
        for payload in payloads:
            if payload.get("sleep"):
                time.sleep(payload["sleep"])
            if payload.get("boom"):
                raise ValueError(f"boom: {payload['boom']}")
            out.append({"value": payload.get("value")})
        return out

    def generate_stream(self, prompt, max_new_tokens, eos=None):
        # ``prompt`` is a script dict: n tokens, optional per-token sleep
        for i in range(int(prompt.get("n", max_new_tokens))):
            if prompt.get("sleep"):
                time.sleep(prompt["sleep"])
            yield i


register_adapter(EchoModel, EchoAdapter)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    previous = configure_faults(None)
    yield
    configure_faults(previous)


def echo_session(**overrides):
    overrides.setdefault("max_wait", 0.01)
    return compile_model(EchoModel()).session(**overrides)


def req(value, **extra):
    return {"task": "classify", "value": value, **extra}


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_at_admission(self):
        with echo_session() as session:
            with pytest.raises(DeadlineExceeded):
                session.submit(req(1), timeout=0)
            assert session.summary()["reliability"]["timeouts"] == 1

    def test_expired_while_queued(self):
        with echo_session(workers=1) as session:
            blocker = session.submit(req("blocker", sleep=0.3))
            time.sleep(0.05)  # blocker is in flight; next job waits behind it
            doomed = session.submit(req("late"), timeout=0.05)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5)
            assert blocker.result(timeout=5) == {"value": "blocker"}
            assert session.summary()["reliability"]["timeouts"] == 1

    def test_payload_timeout_key(self):
        with echo_session(workers=1) as session:
            session.submit(req("blocker", sleep=0.3))
            time.sleep(0.05)
            doomed = session.submit(req("late", timeout=0.05))
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5)

    def test_config_default_timeout(self):
        with echo_session(workers=1, default_timeout=0.05) as session:
            session.submit(req("blocker", sleep=0.3))
            time.sleep(0.1)
            doomed = session.submit(req("late"))
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5)

    def test_explicit_timeout_overrides_default(self):
        with echo_session(default_timeout=0.0001) as session:
            future = session.submit(req("ok"), timeout=5.0)
            assert future.result(timeout=5) == {"value": "ok"}

    def test_no_deadline_by_default(self):
        with echo_session() as session:
            assert session.submit(req(7)).result(timeout=5) == {"value": 7}
            assert session.summary()["reliability"]["timeouts"] == 0


# ----------------------------------------------------------------------
# Backpressure / admission control
# ----------------------------------------------------------------------
class TestBackpressure:
    def _fill(self, session, queued):
        """Occupy the single worker, then queue ``queued`` more jobs."""
        blocker = session.submit(req("blocker", sleep=0.4))
        deadline = time.time() + 2
        while session.health()["queue_depth"] > 0:  # blocker popped?
            if time.time() > deadline:  # pragma: no cover - diagnostics
                pytest.fail("worker never picked up the blocker")
            time.sleep(0.005)
        return blocker, [session.submit(req(i)) for i in range(queued)]

    def test_reject_when_full(self):
        with echo_session(workers=1, max_queue=2) as session:
            blocker, queued = self._fill(session, 2)
            with pytest.raises(QueueFull):
                session.submit(req("overflow"))
            assert [f.result(timeout=5) for f in queued] == [
                {"value": 0}, {"value": 1},
            ]
            assert session.summary()["reliability"]["sheds"] == 1

    def test_drop_oldest_sheds_head_of_queue(self):
        with echo_session(workers=1, max_queue=2, shed_policy="oldest") as session:
            blocker, queued = self._fill(session, 2)
            newest = session.submit(req("newest"))  # sheds queued[0]
            with pytest.raises(RequestShed):
                queued[0].result(timeout=5)
            assert queued[1].result(timeout=5) == {"value": 1}
            assert newest.result(timeout=5) == {"value": "newest"}
            assert session.summary()["reliability"]["sheds"] == 1

    def test_unbounded_by_default(self):
        with echo_session(workers=1) as session:
            futures = [session.submit(req(i)) for i in range(64)]
            assert [f.result(timeout=5)["value"] for f in futures] == list(range(64))
            assert session.summary()["reliability"]["sheds"] == 0


# ----------------------------------------------------------------------
# map() orphaning (satellite: cancel what never started)
# ----------------------------------------------------------------------
class TestMapTimeout:
    def test_map_timeout_cancels_unstarted_jobs(self):
        with echo_session(workers=1) as session:
            # the blocker occupies the worker well past the map timeout
            session.submit(req("blocker", sleep=0.5))
            time.sleep(0.05)
            with pytest.raises(FutureTimeoutError):
                session.map([req(i) for i in range(8)], timeout=0.05)
            # queued jobs were cancelled, not left to execute pointlessly
            deadline = time.time() + 5
            while session.health()["queue_depth"] > 0 and time.time() < deadline:
                time.sleep(0.01)
            summary = session.summary()
            assert summary["reliability"]["cancelled"] == 8
            # only the blocker was ever served
            assert summary["requests"] == 1 or summary["requests"] == 0


# ----------------------------------------------------------------------
# Retries and bisection
# ----------------------------------------------------------------------
class TestRetries:
    def test_transient_fault_retried_to_success(self):
        with inject_faults("worker.batch:kind=transient,limit=2"):
            with echo_session(max_retries=3, retry_backoff=0.001) as session:
                assert session.submit(req("ok")).result(timeout=5) == {"value": "ok"}
                summary = session.summary()
        assert summary["reliability"]["retries"] == 2
        assert summary["errors"] == 0
        assert summary["requests"] == 1

    def test_retries_exhausted_is_terminal(self):
        with inject_faults("worker.batch:kind=transient"):
            with echo_session(max_retries=1, retry_backoff=0.001) as session:
                future = session.submit(req("doomed"))
                with pytest.raises(TransientFault):
                    future.result(timeout=5)
                summary = session.summary()
        assert summary["reliability"]["retries"] == 1
        assert summary["errors"] == 1

    def test_no_retries_by_default(self):
        with inject_faults("worker.batch:kind=transient,limit=1"):
            with echo_session() as session:
                with pytest.raises(TransientFault):
                    session.submit(req("x")).result(timeout=5)


class TestBisection:
    def test_poison_isolated_in_log_executions(self):
        with echo_session(workers=1, max_batch=8, max_wait=0.2) as session:
            blocker = session.submit(req("blocker", sleep=0.15))
            time.sleep(0.03)
            futures = [
                session.submit(req(i, boom="poison" if i == 3 else None))
                for i in range(8)
            ]
            with pytest.raises(ValueError, match="poison"):
                futures[3].result(timeout=5)
            for i, future in enumerate(futures):
                if i != 3:
                    assert future.result(timeout=5) == {"value": i}
            summary = session.summary()
            adapter = session.compiled.adapter
        # 1 blocker + bisection of 8-with-1-poison: exactly 7 executions
        assert adapter.calls == 8
        # exactly-once accounting (satellite): 8 served, 1 failed, no
        # double counting across the bisection levels
        assert summary["requests"] == 8
        assert summary["errors"] == 1

    def test_every_job_poisoned_all_fail_co_riders_none(self):
        with echo_session(workers=1, max_batch=4, max_wait=0.2) as session:
            session.submit(req("blocker", sleep=0.1)).result(timeout=5)
            futures = [session.submit(req(i, boom=f"p{i}")) for i in range(4)]
            for future in futures:
                with pytest.raises(ValueError):
                    future.result(timeout=5)
            assert session.summary()["errors"] == 4


# ----------------------------------------------------------------------
# Close semantics (satellite: nothing abandoned, ever)
# ----------------------------------------------------------------------
class TestClose:
    def test_close_drains_queue_gracefully(self):
        session = echo_session(workers=1)
        futures = [session.submit(req(i)) for i in range(8)]
        session.close()
        assert [f.result(timeout=1)["value"] for f in futures] == list(range(8))

    def test_forced_close_fails_every_future(self):
        session = echo_session(workers=1)
        stuck = session.submit(req("stuck", sleep=1.0))
        time.sleep(0.05)
        queued = [session.submit(req(i)) for i in range(4)]
        session.close(timeout=0.05)  # worker cannot join in time
        for future in [stuck, *queued]:
            with pytest.raises(SessionClosed):
                future.result(timeout=1)
        assert session.summary()["reliability"]["closed"] == 5

    def test_submit_after_close_raises(self):
        session = echo_session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(req(1))

    def test_close_idempotent(self):
        session = echo_session()
        session.close()
        session.close()


# ----------------------------------------------------------------------
# Stream abandonment (satellite: consumer walks away)
# ----------------------------------------------------------------------
class TestStreamAbandonment:
    def test_abandoned_stream_releases_worker_promptly(self):
        with echo_session(workers=1) as session:
            stream = session.stream(
                {"task": "generate", "prompt": {"n": 200, "sleep": 0.01}}
            )
            got = [next(stream), next(stream)]
            stream.close()  # consumer walks away mid-generation
            # the single worker must come free long before 200 * 10ms
            start = time.perf_counter()
            assert session.submit(req("after")).result(timeout=5) == {
                "value": "after"
            }
            assert time.perf_counter() - start < 1.0
            summary = session.summary()
        assert got == [0, 1]
        assert summary["reliability"]["cancelled"] == 1
        # only the tokens actually produced were recorded
        assert summary["tokens"] < 200

    def test_exhausted_stream_not_counted_cancelled(self):
        with echo_session() as session:
            tokens = list(session.stream({"task": "generate", "prompt": {"n": 5}}))
            summary = session.summary()
        assert tokens == [0, 1, 2, 3, 4]
        assert summary["reliability"]["cancelled"] == 0
        assert summary["requests"] == 1

    def test_stream_deadline_enforced_between_tokens(self):
        with echo_session() as session:
            stream = session.stream(
                {"task": "generate", "prompt": {"n": 100, "sleep": 0.02}},
                timeout=0.1,
            )
            with pytest.raises(DeadlineExceeded):
                list(stream)
            assert session.summary()["reliability"]["timeouts"] == 1


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_hung_worker_detected_and_replaced(self):
        with echo_session(
            workers=1, watchdog_interval=0.05, hang_timeout=0.15
        ) as session:
            hung = session.submit(req("hang", sleep=0.6))
            with pytest.raises(WorkerHung):
                hung.result(timeout=5)
            # the replacement worker serves new traffic immediately,
            # while the hung thread is still sleeping
            assert session.submit(req("next")).result(timeout=5) == {"value": "next"}
            health = session.health()
            summary = session.summary()
        assert summary["reliability"]["hung"] == 1
        assert summary["reliability"]["workers_replaced"] == 1
        assert health["workers"]["replaced"] == 1
        assert health["workers"]["alive"] == 1

    def test_healthy_workers_not_replaced(self):
        with echo_session(
            workers=2, watchdog_interval=0.02, hang_timeout=0.5
        ) as session:
            futures = [session.submit(req(i)) for i in range(16)]
            for future in futures:
                future.result(timeout=5)
            time.sleep(0.1)  # several watchdog sweeps over idle workers
            assert session.summary()["reliability"]["workers_replaced"] == 0


# ----------------------------------------------------------------------
# Health
# ----------------------------------------------------------------------
class TestHealth:
    def test_health_shape_and_ok_state(self):
        with echo_session(workers=2) as session:
            session.submit(req(1)).result(timeout=5)
            health = session.health()
        assert health["state"] == "ok"
        assert health["queue_depth"] == 0
        assert health["workers"]["configured"] == 2
        assert health["workers"]["alive"] == 2
        assert health["fidelity"] == "fp32"  # echo model is unquantized
        assert health["degradation"] is None

    def test_overloaded_state(self):
        with echo_session(workers=1, max_queue=2) as session:
            self_blocker = session.submit(req("b", sleep=0.3))
            time.sleep(0.05)
            session.submit(req(1))
            session.submit(req(2))
            assert session.health()["state"] == "overloaded"
            self_blocker.result(timeout=5)

    def test_closed_state(self):
        session = echo_session()
        session.close()
        assert session.health()["state"] == "closed"

    def test_summary_reliability_block_complete(self):
        from repro.serve import RELIABILITY_EVENTS

        with echo_session() as session:
            session.submit(req(1)).result(timeout=5)
            reliability = session.summary()["reliability"]
        assert set(reliability) == {"errors", *RELIABILITY_EVENTS}
        assert all(v == 0 for v in reliability.values())
