"""Dynamic counterpart of the lifecycle analysis rules: under shutdown
races every future must still resolve.

Two scripted races: ``close()`` against an active ``stream`` consumer,
and ``close()`` against a watchdog mid-replacement.  In both, no future
may be left unresolved and no consumer may block forever — the invariant
the ``dropped-future`` static rule enforces lexically.
"""

import threading
import time

import pytest

from repro.nn.layers import Module
from repro.serve import (
    SessionClosed,
    TaskAdapter,
    WorkerHung,
    compile_model,
    configure_faults,
    register_adapter,
)


class LifecycleEchoModel(Module):
    """Parameterless model; behavior scripted by request payloads."""


class LifecycleEchoAdapter(TaskAdapter):
    tasks = ("classify", "generate")

    def classify(self, payloads):
        out = []
        for payload in payloads:
            if payload.get("sleep"):
                time.sleep(payload["sleep"])
            out.append({"value": payload.get("value")})
        return out

    def generate_stream(self, prompt, max_new_tokens, eos=None):
        for i in range(int(prompt.get("n", max_new_tokens))):
            if prompt.get("sleep"):
                time.sleep(prompt["sleep"])
            yield i


register_adapter(LifecycleEchoModel, LifecycleEchoAdapter)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    previous = configure_faults(None)
    yield
    configure_faults(previous)


def lifecycle_session(**overrides):
    overrides.setdefault("max_wait", 0.01)
    return compile_model(LifecycleEchoModel()).session(**overrides)


def drain_stream(stream, sink):
    """Consume a stream into ``sink``; record the terminal outcome."""
    try:
        for token in stream:
            sink["tokens"].append(token)
        sink["outcome"] = "exhausted"
    except BaseException as error:  # the consumer must see a typed error
        sink["outcome"] = error


class TestCloseVsStreamConsumer:
    def test_close_racing_active_stream_resolves_everything(self):
        session = lifecycle_session(workers=1)
        stream = session.stream(
            {"task": "generate", "prompt": {"n": 50, "sleep": 0.02}}
        )
        sink = {"tokens": [], "outcome": None}
        consumer = threading.Thread(target=drain_stream, args=(stream, sink))
        consumer.start()
        while not sink["tokens"]:  # the stream is demonstrably in flight
            time.sleep(0.005)
        session.close(timeout=0.2)  # give up on the mid-token worker
        consumer.join(timeout=5)
        assert not consumer.is_alive(), "stream consumer blocked after close()"
        # the consumer either drained the stream or got a typed error —
        # never a hang, never a bare unresolved future
        assert sink["outcome"] == "exhausted" or isinstance(
            sink["outcome"], BaseException
        )
        # the session is fully closed: new work is refused immediately
        with pytest.raises(SessionClosed):
            session.submit({"task": "classify", "value": 1})

    def test_abandoning_consumer_then_close_is_clean(self):
        with lifecycle_session(workers=1) as session:
            stream = session.stream(
                {"task": "generate", "prompt": {"n": 50, "sleep": 0.02}}
            )
            got = [next(stream), next(stream)]
            stream.close()  # consumer walks away; close() follows via ctx exit
            assert got == [0, 1]


class TestConcurrentClose:
    def test_concurrent_close_is_idempotent(self):
        """Regression for the close() epilogue: the final ``_closed``
        transition now happens under the condition variable, so a racing
        second close() can never observe a half-finished shutdown."""
        session = lifecycle_session(workers=2)
        futures = [
            session.submit({"task": "classify", "value": i, "sleep": 0.01})
            for i in range(8)
        ]
        barrier = threading.Barrier(3)

        def closer():
            barrier.wait()
            session.close(timeout=2)

        threads = [threading.Thread(target=closer) for _ in range(2)]
        for t in threads:
            t.start()
        barrier.wait()
        session.close(timeout=2)
        for t in threads:
            t.join(timeout=5)
            assert not t.is_alive(), "concurrent close() deadlocked"
        for future in futures:
            assert future.done(), "close() left a submitted future unresolved"
        with pytest.raises(SessionClosed):
            session.submit({"task": "classify", "value": 9})

    def test_submit_after_close_raises_not_hangs(self):
        session = lifecycle_session(workers=1)
        session.submit({"task": "classify", "value": 1}).result(timeout=5)
        session.close()
        for _ in range(3):  # idempotent, immediate
            session.close()
        with pytest.raises(SessionClosed):
            session.submit({"task": "classify", "value": 2})


class TestCloseVsWatchdogReplacement:
    def test_close_during_watchdog_replacement_resolves_all_futures(self):
        session = lifecycle_session(
            workers=1, watchdog_interval=0.03, hang_timeout=0.1
        )
        hung = session.submit({"task": "classify", "value": "hang", "sleep": 0.8})
        pending = [
            session.submit({"task": "classify", "value": i}) for i in range(4)
        ]
        # wait until the watchdog has marked the worker hung (the future
        # resolves with WorkerHung) so close() overlaps the replacement
        with pytest.raises(WorkerHung):
            hung.result(timeout=5)
        session.close(timeout=0.3)
        for future in pending + [hung]:
            assert future.done(), "close() during replacement dropped a future"
        summary = session.summary()
        # the hung request plus any batch-mates the watchdog failed with it
        assert summary["reliability"]["hung"] >= 1
        assert summary["reliability"]["workers_replaced"] >= 1

    def test_close_while_worker_still_hung_fails_outstanding(self):
        session = lifecycle_session(
            workers=1, watchdog_interval=0.05, hang_timeout=10.0
        )
        # the worker hangs but the watchdog won't replace it (long
        # hang_timeout): close(timeout=small) must abandon it and fail
        # every outstanding future with SessionClosed
        stuck = session.submit({"task": "classify", "value": "x", "sleep": 1.0})
        queued = [
            session.submit({"task": "classify", "value": i}) for i in range(3)
        ]
        time.sleep(0.05)  # the worker is demonstrably mid-batch
        session.close(timeout=0.1)
        for future in queued + [stuck]:
            assert future.done(), "abandoned worker left a future unresolved"
        done_kinds = set()
        for future in queued + [stuck]:
            if future.cancelled():
                done_kinds.add("cancelled")
            elif future.exception() is not None:
                done_kinds.add(type(future.exception()).__name__)
            else:
                done_kinds.add("result")
        assert "SessionClosed" in done_kinds
