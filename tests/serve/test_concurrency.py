"""Concurrency: one CompiledModel hammered from N threads.

Exercises the kernel plan-cache lock and the weight-memoization path under
contention; results must be identical to serial execution, and the frozen
weights must never be re-quantized into inconsistency.
"""

import threading

import numpy as np
import pytest

from repro.data.synthetic import CTRLogs, SyntheticLanguage
from repro.models.dlrm import DLRM
from repro.models.gpt import GPT, GPTConfig
from repro.serve import compile_model

SMALL = GPTConfig(dim=16, num_layers=1, num_heads=2, max_len=64)
N_THREADS = 8
PER_THREAD = 6


def _hammer(n_threads, worker):
    """Run ``worker(thread_index)`` across threads, re-raising any error."""
    errors = []
    barrier = threading.Barrier(n_threads)

    def wrapped(index):
        try:
            barrier.wait(timeout=30)
            worker(index)
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    if errors:
        raise errors[0]


class TestCompiledModelContention:
    def test_gpt_scores_identical_to_serial(self):
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
        compiled = compile_model(model, "mx6")

        rng = np.random.default_rng(1)
        requests = [
            {
                "task": "score",
                "context": lang.sample_sequence(10, rng),
                "candidates": [lang.sample_sequence(3, rng), lang.sample_sequence(3, rng)],
            }
            for _ in range(N_THREADS * PER_THREAD)
        ]
        serial = compiled.run(requests)

        results = [None] * len(requests)

        def worker(index):
            for j in range(PER_THREAD):
                k = index * PER_THREAD + j
                results[k] = compiled.run_one(requests[k])

        _hammer(N_THREADS, worker)
        assert compiled.check_frozen()
        for got, expected in zip(results, serial):
            assert got["scores"] == expected["scores"]

    def test_dlrm_probas_identical_to_serial(self):
        logs = CTRLogs(seed=0)
        model = DLRM(rng=np.random.default_rng(2))
        compiled = compile_model(model, "mx6", quantize_embeddings=True)
        dense, cats, _ = logs.sample(N_THREADS * PER_THREAD, np.random.default_rng(3))
        requests = [
            {"task": "classify", "dense": dense[i], "cats": cats[i]}
            for i in range(dense.shape[0])
        ]
        serial = compiled.run(requests)

        results = [None] * len(requests)

        def worker(index):
            for j in range(PER_THREAD):
                k = index * PER_THREAD + j
                results[k] = compiled.run_one(requests[k])

        _hammer(N_THREADS, worker)
        assert results == serial


class TestSessionContention:
    def test_threaded_submitters_one_session(self):
        """Many client threads submitting into one micro-batched session."""
        lang = SyntheticLanguage(seed=4)
        model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(5))
        compiled = compile_model(model, "mx6")
        rng = np.random.default_rng(6)
        requests = [
            {
                "task": "score",
                "context": lang.sample_sequence(10, rng),
                "candidates": [lang.sample_sequence(2, rng), lang.sample_sequence(4, rng)],
            }
            for _ in range(N_THREADS * PER_THREAD)
        ]
        serial = compiled.run(requests)

        results = [None] * len(requests)
        with compiled.session(max_batch=8, max_wait=0.01, workers=2) as session:

            def worker(index):
                futures = []
                for j in range(PER_THREAD):
                    k = index * PER_THREAD + j
                    futures.append((k, session.submit(requests[k])))
                for k, future in futures:
                    results[k] = future.result(timeout=30)

            _hammer(N_THREADS, worker)
            summary = session.summary()

        assert summary["requests"] == len(requests)
        assert summary["errors"] == 0
        for got, expected in zip(results, serial):
            assert got["scores"] == expected["scores"]


class TestGradModeIsolation:
    def test_no_grad_is_thread_local(self):
        """A serving thread under no_grad must not disable grad elsewhere,
        and interleaved contexts across threads must not corrupt the flag."""
        from repro.nn.tensor import is_grad_enabled, no_grad

        entered = threading.Event()
        release = threading.Event()
        inside = {}

        def worker():
            with no_grad():
                inside["enabled"] = is_grad_enabled()
                entered.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=30)
        # the worker sits inside no_grad; this thread is unaffected
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        release.set()
        thread.join(timeout=30)
        assert inside["enabled"] is False
        assert is_grad_enabled()

    def test_training_backward_while_session_serves(self):
        """Gradients flow on the main thread while workers serve no_grad
        batches concurrently (the bug this pins: a shared global flag)."""
        lang = SyntheticLanguage(seed=7)
        model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(8))
        compiled = compile_model(model, "mx6")
        trainer = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(9))
        requests = [
            {
                "task": "score",
                "context": lang.sample_sequence(10, np.random.default_rng(10)),
                "candidates": [np.array([1]), np.array([2])],
            }
            for _ in range(12)
        ]
        with compiled.session(max_batch=4, max_wait=0.05) as session:
            futures = [session.submit(r) for r in requests]
            batch = next(iter(lang.batches(2, 8, 1, seed=11)))
            loss = trainer.loss(batch)
            loss.backward()  # must build a graph despite concurrent no_grad
            assert any(p.grad is not None for p in trainer.parameters())
            for future in futures:
                future.result(timeout=30)
