"""compile_model: freezing semantics, policies, cast mode, facade."""

import numpy as np
import pytest

import repro
from repro.data.synthetic import SyntheticLanguage
from repro.flow.policy import quantizable_modules
from repro.formats.registry import get_format
from repro.models.gpt import GPT, GPTConfig
from repro.nn.tensor import no_grad
from repro.serve import CompiledModel, SessionConfig, compile_model
from repro.spec import FirstLastHighPolicy

SMALL = GPTConfig(dim=16, num_layers=1, num_heads=2, max_len=64)


@pytest.fixture()
def lang():
    return SyntheticLanguage(seed=0)


@pytest.fixture()
def model(lang):
    return GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))


def test_compile_installs_inference_specs(model):
    compiled = compile_model(model, "mx6")
    assert isinstance(compiled, CompiledModel)
    for _, module in quantizable_modules(model):
        assert module.quant.weight.name == "MX6"
        assert module.quant.activation.name == "MX6"
        assert module.quant.backward is None
        # per-role format instances, never shared
        assert module.quant.weight is not module.quant.activation
    assert not model.training  # eval mode
    assert compiled.warmed > 0


def test_compile_activation_override(model):
    compiled = compile_model(model, "mx4", activation="mx9")
    del compiled
    for _, module in quantizable_modules(model):
        assert module.quant.weight.name == "MX4"
        assert module.quant.activation.name == "MX9"


def test_compile_facade_is_compile_model(model):
    compiled = repro.compile(model, "mx6")
    assert isinstance(compiled, CompiledModel)
    assert compiled.config.format == "mx6"


def test_compile_with_policy(model):
    policy = FirstLastHighPolicy(quant="mx4", high=None)
    compiled = compile_model(model, policy=policy)
    names = [name for name, _ in quantizable_modules(model)]
    modules = dict(quantizable_modules(model))
    assert modules[names[0]].quant is None
    assert modules[names[-1]].quant is None
    inner = [n for n in names if n not in (names[0], names[-1])]
    assert all(modules[n].quant.weight.name == "MX4" for n in inner)
    assert compiled.config.policy["kind"] == "first_last_high"


def test_compile_fmt_and_policy_exclusive(model):
    with pytest.raises(ValueError, match="mutually exclusive"):
        compile_model(model, "mx6", policy=FirstLastHighPolicy(quant="mx4"))


def test_compile_none_keeps_existing_config(model, lang):
    """compile(model) freezes whatever is already installed (here FP32)."""
    compiled = compile_model(model)
    assert compiled.config.format is None
    assert all(m.quant is None for _, m in quantizable_modules(model))
    tokens = lang.sample_sequence(8, np.random.default_rng(1))
    with no_grad():
        expected = model.forward(tokens[None, :-1]).data
    out = compiled("score", context=tokens[:4], continuation=tokens[4:])
    assert np.isfinite(out["logprob"])
    del expected


def test_quantize_once_no_requantization(model, lang):
    """After the first request, weight quantization is never recomputed."""
    compiled = compile_model(model, "mx6")
    context = lang.sample_sequence(8, np.random.default_rng(2))
    compiled("score", context=context, continuation=context[:2])

    calls = {"n": 0}
    fmt = get_format("mx6")
    original = type(fmt).quantize

    for _, module in quantizable_modules(model):
        if module.quant is not None and module.quant.weight is not None:
            real = module.quant.weight.quantize

            def counting(x, axis=-1, rounding="nearest", rng=None, _real=real, **kw):
                calls["n"] += 1
                return _real(x, axis=axis, rounding=rounding, rng=rng, **kw)

            module.quant.weight.quantize = counting
    del original
    compiled("score", context=context, continuation=context[:2])
    assert calls["n"] == 0, "frozen weights were re-quantized"


def test_check_frozen_detects_mutation(model):
    compiled = compile_model(model, "mx6")
    assert compiled.check_frozen()
    model.head.weight.data = model.head.weight.data * 1.5
    assert not compiled.check_frozen()


def test_freeze_cast_bakes_storage(model):
    before = {k: v.copy() for k, v in model.state_dict().items()}
    compiled = compile_model(model, "mx6", freeze="cast")
    after = model.state_dict()
    changed = [k for k in before if not np.array_equal(before[k], after[k])]
    assert changed, "cast mode must rewrite stored weights"
    fmt = get_format("mx6")
    w = after["head.weight"]
    np.testing.assert_array_equal(fmt.quantize(w, axis=0), w)
    assert compiled.config.freeze == "cast"


def test_freeze_cast_requires_format(model):
    with pytest.raises(ValueError, match="cast"):
        compile_model(model, freeze="cast")


def test_bad_freeze_mode(model):
    with pytest.raises(ValueError, match="freeze"):
        compile_model(model, "mx6", freeze="banana")


def test_compile_from_session_config(model):
    config = SessionConfig(format="mx6", max_batch=4, max_wait=0.01, workers=2)
    compiled = compile_model(model, config=config)
    assert compiled.config.max_batch == 4
    assert compiled.config.workers == 2
    assert compiled.describe()["config"]["format"] == "mx6"


def test_describe_payload(model):
    compiled = compile_model(model, "mx6")
    info = compiled.describe()
    assert info["family"] == "GPT"
    assert info["adapter"] == "CausalLMAdapter"
    assert set(info["tasks"]) == {"score", "generate"}
    assert info["parameters"] == model.num_parameters()
    import json

    json.dumps(info)  # plain data


def test_serve_one_call(lang):
    from repro.serve import serve

    model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(3))
    with serve(model, format="mx6", max_batch=4) as session:
        context = lang.sample_sequence(8, np.random.default_rng(4))
        result = session.map(
            [{"task": "score", "context": context, "candidates": [context[:2], context[2:4]]}]
        )[0]
    assert result["choice"] in (0, 1)


def test_explicit_freeze_wins_over_config(model):
    """freeze='cast' must not be silently discarded when config= is given."""
    before = {k: v.copy() for k, v in model.state_dict().items()}
    compile_model(model, freeze="cast",
                  config=SessionConfig(format="mx6"))  # config freeze: memo
    after = model.state_dict()
    assert any(not np.array_equal(before[k], after[k]) for k in before), (
        "explicit freeze='cast' was ignored in favor of config.freeze"
    )
