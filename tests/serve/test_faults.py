"""The fault-injection framework: grammar, determinism, scoping, probes."""

import pytest

from repro.serve.faults import (
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ServingError,
    SessionClosed,
    TransientFault,
    active_faults,
    configure_faults,
    ensure_env_faults,
    fault_point,
    faults_from_env,
    inject_faults,
    is_transient,
    parse_faults,
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends with no active plan."""
    previous = configure_faults(None)
    yield
    configure_faults(previous)


class TestTaxonomy:
    def test_typed_errors_are_serving_errors(self):
        for cls in (SessionClosed, DeadlineExceeded, InjectedFault, TransientFault):
            assert issubclass(cls, ServingError)
            assert issubclass(cls, RuntimeError)

    def test_deadline_is_a_timeout(self):
        # callers with generic timeout handling catch deadlines for free
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_session_closed_matches_legacy_message_contract(self):
        with pytest.raises(RuntimeError, match="closed"):
            raise SessionClosed("session is closed")

    def test_is_transient(self):
        assert is_transient(TransientFault("x"))
        assert not is_transient(InjectedFault("x"))
        assert not is_transient(ValueError("x"))

        class AppRetryable(Exception):
            transient = True

        assert is_transient(AppRetryable())


class TestGrammar:
    def test_parse_basic(self):
        plan = parse_faults("adapter.run_batch:kind=transient,rate=0.25")
        assert plan.seed == 0
        (rule,) = plan.rules
        assert rule.site == "adapter.run_batch"
        assert rule.kind == "transient"
        assert rule.rate == 0.25

    def test_parse_seed_and_multiple_clauses(self):
        plan = parse_faults("seed=7 worker.batch kernel.quantize:rate=0.5,after=3")
        assert plan.seed == 7
        assert [r.site for r in plan.rules] == ["worker.batch", "kernel.quantize"]
        assert plan.rules[0].kind == "error"  # defaults
        assert plan.rules[1].after == 3

    def test_parse_semicolon_separator(self):
        plan = parse_faults("worker.batch;adapter.run_batch")
        assert len(plan.rules) == 2

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="bad fault option"):
            parse_faults("worker.batch:frequency=2")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError, match="no rules"):
            parse_faults("   ")

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(site="x", kind="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultRule(site="x", rate=1.5)
        with pytest.raises(ValueError, match="site"):
            FaultRule(site="")


class TestMatching:
    def test_exact_prefix_and_wildcard(self):
        assert FaultRule(site="adapter.run_batch").matches("adapter.run_batch")
        assert FaultRule(site="adapter").matches("adapter.run_batch")
        assert not FaultRule(site="adapter").matches("adapters.run_batch")
        assert FaultRule(site="*").matches("anything.at.all")

    def test_watches(self):
        plan = parse_faults("kernel.quantize:rate=0.1")
        assert plan.watches("kernel")
        assert not plan.watches("adapter")
        assert parse_faults("*").watches("kernel")


class TestDeterminism:
    def _schedule(self, seed, visits=64):
        plan = parse_faults("worker.batch:kind=transient,rate=0.3", seed=seed)
        return [plan.decide("worker.batch") is not None for _ in range(visits)]

    def test_same_seed_same_schedule(self):
        assert self._schedule(11) == self._schedule(11)

    def test_different_seed_different_schedule(self):
        assert self._schedule(11) != self._schedule(12)

    def test_schedule_independent_of_interleaving(self):
        # decisions key on the per-rule hit counter, so visits to OTHER
        # sites never shift the schedule of this one
        plan_a = parse_faults("worker.batch:rate=0.5", seed=3)
        plan_b = parse_faults("worker.batch:rate=0.5", seed=3)
        got_a = [plan_a.decide("worker.batch") is not None for _ in range(32)]
        got_b = []
        for _ in range(32):
            plan_b.decide("worker.stream")  # unmatched traffic in between
            got_b.append(plan_b.decide("worker.batch") is not None)
        assert got_a == got_b

    def test_rate_one_always_fires_rate_zero_never(self):
        always = parse_faults("s:rate=1.0")
        never = parse_faults("s:rate=0.0")
        assert all(always.decide("s") for _ in range(10))
        assert not any(never.decide("s") for _ in range(10))


class TestScheduling:
    def test_after_skips_first_matches(self):
        plan = parse_faults("s:after=2")
        assert [plan.decide("s") is not None for _ in range(4)] == [
            False, False, True, True,
        ]

    def test_limit_caps_injections(self):
        plan = parse_faults("s:limit=2")
        assert [plan.decide("s") is not None for _ in range(4)] == [
            True, True, False, False,
        ]

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind="transient"), FaultRule(site="s", kind="error")]
        )
        assert plan.decide("s").kind == "transient"

    def test_stats(self):
        plan = parse_faults("s:limit=1")
        plan.decide("s")
        plan.decide("s")
        (stat,) = plan.stats()
        assert stat == {"site": "s", "kind": "error", "hits": 2, "injected": 1}


class TestActivation:
    def test_fault_point_noop_without_plan(self):
        fault_point("worker.batch")  # must not raise

    def test_inject_faults_scopes_and_restores(self):
        assert active_faults() is None
        with inject_faults("worker.batch:kind=transient"):
            assert active_faults() is not None
            with pytest.raises(TransientFault):
                fault_point("worker.batch")
        assert active_faults() is None
        fault_point("worker.batch")

    def test_error_kind_raises_injected_fault(self):
        with inject_faults("s"):
            with pytest.raises(InjectedFault) as err:
                fault_point("s")
            assert not is_transient(err.value)

    def test_env_parsing(self):
        assert faults_from_env({}) is None
        assert faults_from_env({"REPRO_FAULTS": "  "}) is None
        plan = faults_from_env({"REPRO_FAULTS": "seed=5 worker.batch:rate=0.5"})
        assert plan.seed == 5

    def test_ensure_env_faults_defers_to_active_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.batch")
        with inject_faults("adapter.run_batch") as manual:
            assert ensure_env_faults() is manual  # programmatic plan wins
        configure_faults(None)
        installed = ensure_env_faults()
        assert installed is not None
        assert installed.rules[0].site == "worker.batch"


class TestKernelProbe:
    def test_probe_installed_only_while_watching_kernel(self):
        from repro.core import quantize as Q

        assert Q._FAULT_PROBE is None
        with inject_faults("kernel.quantize:rate=0.0"):
            assert Q._FAULT_PROBE is fault_point
        assert Q._FAULT_PROBE is None
        with inject_faults("adapter.run_batch"):
            assert Q._FAULT_PROBE is None  # plan active, but not for kernels

    def test_kernel_site_fires_through_the_engine(self):
        import numpy as np

        import repro

        with inject_faults("kernel.quantize:kind=transient,limit=1"):
            with pytest.raises(TransientFault):
                repro.quantize(np.ones(16, dtype=np.float32), "mx6")
        # plan gone: the same call succeeds and pays no probe
        repro.quantize(np.ones(16, dtype=np.float32), "mx6")
