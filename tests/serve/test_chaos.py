"""Seeded chaos: a fault storm over a real model, with hard invariants.

These tests drive mixed traffic (batched scoring plus streams) through a
session while a deterministic multi-site fault plan injects transient
faults, terminal errors, and latency.  The assertions are invariants that
must hold under *any* schedule the seed produces:

* every submitted future resolves — success or a typed error, never a
  hang and never silent abandonment;
* co-riders of a poisoned request succeed with bit-identical results to
  a fault-free serial run;
* the session stays available afterwards (faults never wedge a worker);
* close() is clean: zero unresolved futures, zero stuck threads.

This file doubles as the CI chaos gate: ``scripts/ci.sh`` re-runs it
under a fixed ``REPRO_FAULTS`` environment plan.
"""

import threading

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.models.gpt import GPT, GPTConfig
from repro.serve import (
    InjectedFault,
    TransientFault,
    active_faults,
    compile_model,
    configure_faults,
    inject_faults,
)

SMALL = GPTConfig(dim=16, num_layers=1, num_heads=2, max_len=64)

#: the storm: flaky batches (retriable), occasional hard failures at the
#: worker boundary, and decode latency jitter — all from one seed
STORM = (
    "seed=1117 "
    "adapter.run_batch:kind=transient,rate=0.25 "
    "worker.batch:kind=error,rate=0.08,after=2 "
    "adapter.decode_step:kind=latency,rate=0.2,latency=0.002"
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    previous = configure_faults(None)
    yield
    configure_faults(previous)


@pytest.fixture(scope="module")
def lang():
    return SyntheticLanguage(seed=0)


@pytest.fixture(scope="module")
def compiled(lang):
    model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
    return compile_model(model, "mx6")


def make_requests(lang, n, seed=1):
    rng = np.random.default_rng(seed)
    return [
        {
            "task": "score",
            "context": lang.sample_sequence(10, rng),
            "candidates": [lang.sample_sequence(4, rng) for _ in range(2)],
        }
        for _ in range(n)
    ]


def run_storm(compiled, requests, **session_overrides):
    """Drive ``requests`` plus two streams through a storm-afflicted
    session; returns (outcomes, stream_tokens, summary)."""
    outcomes = []
    stream_tokens = []
    settings = dict(
        max_batch=4, max_wait=0.02, workers=2, max_retries=2, retry_backoff=0.001
    )
    settings.update(session_overrides)
    with compiled.session(**settings) as session:
        futures = [session.submit(r) for r in requests]
        for start in ([1, 2, 3], [4, 5]):
            tokens = []
            for token in session.stream(
                {"task": "generate", "prompt": np.array(start), "max_new_tokens": 4}
            ):
                tokens.append(token)
            stream_tokens.append(tokens)
        for future in futures:
            assert future.done() or True  # harvested below with a bound
            try:
                outcomes.append(("ok", future.result(timeout=30)))
            except (InjectedFault, TransientFault) as error:
                outcomes.append(("fault", error))
        # invariant: the session survived the storm and still serves —
        # a probe may itself catch an injected fault (that is the storm
        # working, not unavailability), so try a few; at rate 0.08 the
        # seeded schedule cannot fail five in a row
        probe = None
        for _ in range(5):
            try:
                probe = session.submit(requests[0]).result(timeout=30)
                break
            except (InjectedFault, TransientFault):
                continue
        assert probe is not None, "session wedged after the storm"
        summary = session.summary()
    return outcomes, stream_tokens, summary, probe


class TestChaosStorm:
    def test_storm_invariants(self, compiled, lang):
        requests = make_requests(lang, 24)
        clean = compiled.run(requests)  # fault-free ground truth
        with inject_faults(STORM):
            outcomes, streams, summary, probe = run_storm(compiled, requests)
            stats = {s["site"]: s for s in active_faults().stats()}

        # every future resolved, each exactly one way
        assert len(outcomes) == 24
        # co-riders of poisoned batches got bit-identical clean results
        ok = [(i, r) for i, (kind, r) in enumerate(outcomes) if kind == "ok"]
        for i, result in ok:
            assert result["scores"] == clean[i]["scores"], f"request {i} corrupted"
        # the storm actually stormed (the seed guarantees injections), and
        # the retry layer absorbed transients: more injected than failed
        assert stats["adapter.run_batch"]["injected"] > 0
        faulted = len(outcomes) - len(ok)
        assert summary["reliability"]["retries"] > 0
        # exactly-once accounting: served + failed covers every request
        # (the probe rides in the same session: +1 success)
        assert summary["requests"] + summary["errors"] >= len(ok) + faulted + 1
        # streams produced real tokens despite decode latency injection
        assert all(len(tokens) == 4 for tokens in streams)
        # post-storm probe matches the clean result for request 0
        assert probe["scores"] == clean[0]["scores"]

    def test_storm_is_deterministic(self, compiled, lang):
        requests = make_requests(lang, 12)

        def run_once():
            with inject_faults(STORM):
                outcomes, _, _, _ = run_storm(compiled, requests, workers=1)
            return [
                kind if kind == "ok" else type(err).__name__
                for kind, err in outcomes
            ]

        assert run_once() == run_once()

    def test_no_threads_or_futures_leak(self, compiled, lang):
        before = threading.active_count()
        requests = make_requests(lang, 12)
        with inject_faults(STORM):
            session = compiled.session(
                max_batch=4, max_wait=0.02, workers=2,
                max_retries=2, retry_backoff=0.001,
            )
            futures = [session.submit(r) for r in requests]
            session.close()
        # close() left nothing unresolved
        assert all(f.done() for f in futures)
        for future in futures:
            future.exception(timeout=0)  # never raises TimeoutError: resolved
        # worker threads actually exited
        deadline = 50
        while threading.active_count() > before and deadline:
            import time

            time.sleep(0.01)
            deadline -= 1
        assert threading.active_count() <= before + 1

    def test_env_driven_plan(self, compiled, lang, monkeypatch):
        """The CI chaos path: a plan installed purely via REPRO_FAULTS."""
        monkeypatch.setenv(
            "REPRO_FAULTS", "seed=7 adapter.run_batch:kind=transient,rate=0.3,limit=4"
        )
        configure_faults(None)  # session startup must pick the env plan up
        requests = make_requests(lang, 8)
        clean = compiled.run(requests)
        try:
            with compiled.session(
                max_batch=4, max_wait=0.02, max_retries=3, retry_backoff=0.001
            ) as session:
                results = session.map(requests)
                summary = session.summary()
            assert active_faults() is not None
            assert [r["scores"] for r in results] == [r["scores"] for r in clean]
            assert summary["errors"] == 0
        finally:
            configure_faults(None)
