"""Unit tests for the generic training loop."""

import numpy as np
import pytest

from repro.flow.compute_flow import TrainConfig, TrainResult, fit, make_optimizer, train_with_format
from repro.nn.layers import Linear, Module
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam, SGD
from repro.nn.tensor import Tensor


class ToyRegressor(Module):
    """y = x @ w_true learned by a single Linear."""

    def __init__(self, seed=0):
        super().__init__()
        self.linear = Linear(4, 1, rng=np.random.default_rng(seed))

    def loss(self, batch):
        x, y = batch
        return mse_loss(self.linear(Tensor(x)).reshape(-1), y)


def toy_batches(steps, seed=0):
    rng = np.random.default_rng(seed)
    w_true = np.array([1.0, -2.0, 0.5, 3.0])
    for _ in range(steps):
        x = rng.normal(size=(16, 4))
        yield x, x @ w_true


class TestFit:
    def test_loss_decreases(self):
        model = ToyRegressor()
        result = fit(model, toy_batches(200), TrainConfig(steps=200, lr=0.05))
        assert result.losses[-1] < result.losses[0] / 10

    def test_respects_step_budget(self):
        model = ToyRegressor()
        result = fit(model, toy_batches(1000), TrainConfig(steps=7, lr=0.01))
        assert result.steps == 7
        assert len(result.losses) == 7

    def test_model_left_in_eval_mode(self):
        model = ToyRegressor()
        fit(model, toy_batches(3), TrainConfig(steps=3))
        assert not model.training

    def test_on_step_callback(self):
        seen = []
        fit(
            ToyRegressor(),
            toy_batches(5),
            TrainConfig(steps=5),
            on_step=lambda s, v: seen.append(s),
        )
        assert seen == [0, 1, 2, 3, 4]

    def test_final_loss_requires_steps(self):
        with pytest.raises(ValueError):
            TrainResult().final_loss


class TestMakeOptimizer:
    def test_adam(self):
        opt = make_optimizer(ToyRegressor(), TrainConfig(optimizer="adam", lr=0.1))
        assert isinstance(opt, Adam)

    def test_sgd(self):
        opt = make_optimizer(ToyRegressor(), TrainConfig(optimizer="sgd", momentum=0.9))
        assert isinstance(opt, SGD)
        assert opt.momentum == 0.9

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_optimizer(ToyRegressor(), TrainConfig(optimizer="lamb"))


class TestTrainWithFormat:
    def test_fp32_vs_mx9_close(self):
        """The paper's drop-in claim, in miniature: same init, same data,
        same hyper-parameters; MX9 must land within a whisker of FP32."""
        fp32 = ToyRegressor(seed=3)
        r_fp32 = train_with_format(fp32, toy_batches(80, seed=9), None,
                                   TrainConfig(steps=80, lr=0.01))
        mx9 = ToyRegressor(seed=3)
        r_mx9 = train_with_format(mx9, toy_batches(80, seed=9), "mx9",
                                  TrainConfig(steps=80, lr=0.01))
        assert r_mx9.final_loss == pytest.approx(r_fp32.final_loss, abs=0.02)

    def test_mx4_trains_but_noisier(self):
        model = ToyRegressor(seed=3)
        result = train_with_format(model, toy_batches(80, seed=9), "mx4",
                                   TrainConfig(steps=80, lr=0.01))
        assert result.losses[-1] < result.losses[0]
