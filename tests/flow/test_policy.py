"""Unit tests for precision policies."""

import numpy as np

from repro.flow.policy import (
    apply_quant_policy,
    first_last_high_precision,
    quantizable_modules,
    uniform_policy,
)
from repro.models.vision import TinyResNet
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Linear, Module, Sequential
from repro.nn.quantized import QuantSpec


def build_mlp():
    rng = np.random.default_rng(0)
    return Sequential(Linear(4, 8, rng=rng), Linear(8, 8, rng=rng), Linear(8, 2, rng=rng))


class TestQuantizableModules:
    def test_finds_linears(self):
        model = build_mlp()
        assert len(quantizable_modules(model)) == 3

    def test_finds_conv_and_attention(self):
        model = TinyResNet(rng=np.random.default_rng(1))
        names = [n for n, _ in quantizable_modules(model)]
        assert any("stem" in n for n in names)
        assert any("head" in n for n in names)


class TestUniformPolicy:
    def test_applies_everywhere(self):
        model = build_mlp()
        spec = QuantSpec.uniform("mx9")
        count = apply_quant_policy(model, uniform_policy(spec))
        assert count == 3
        assert all(m.quant is spec for _, m in quantizable_modules(model))

    def test_none_clears(self):
        model = build_mlp()
        apply_quant_policy(model, uniform_policy(QuantSpec.uniform("mx9")))
        apply_quant_policy(model, uniform_policy(None))
        assert all(m.quant is None for _, m in quantizable_modules(model))


class TestFirstLastPolicy:
    def test_boundary_layers_high_precision(self):
        model = build_mlp()
        spec = QuantSpec.uniform("mx9")
        apply_quant_policy(model, first_last_high_precision(spec, model))
        mods = quantizable_modules(model)
        assert mods[0][1].quant is None
        assert mods[-1][1].quant is None
        assert mods[1][1].quant is spec

    def test_custom_high_spec(self):
        model = build_mlp()
        low = QuantSpec.uniform("mx4")
        high = QuantSpec.uniform("mx9")
        apply_quant_policy(model, first_last_high_precision(low, model, high=high))
        mods = quantizable_modules(model)
        assert mods[0][1].quant is high
        assert mods[1][1].quant is low


class TestAttentionHandling:
    def test_set_quant_through_policy(self):
        class WithAttention(Module):
            def __init__(self):
                super().__init__()
                self.attn = MultiHeadAttention(8, 2, rng=np.random.default_rng(2))

        model = WithAttention()
        spec = QuantSpec.uniform("mx6")
        apply_quant_policy(model, uniform_policy(spec))
        assert model.attn.quant is spec
        assert model.attn.q_proj.quant is spec
