"""Unit tests for direct cast and weight casting."""

import numpy as np
import pytest

from repro.flow.cast import cast_weights, clear_quantization, direct_cast
from repro.flow.policy import quantizable_modules
from repro.formats.registry import get_format
from repro.models.dlrm import DLRM
from repro.nn.layers import Linear, Sequential
from repro.nn.tensor import Tensor


def build_model():
    rng = np.random.default_rng(0)
    return Sequential(Linear(32, 16, rng=rng), Linear(16, 4, rng=rng))


class TestDirectCast:
    def test_installs_specs(self):
        model = build_model()
        direct_cast(model, "mx6")
        for _, m in quantizable_modules(model):
            assert m.quant.weight.name == "MX6"
            assert m.quant.activation.name == "MX6"
            assert m.quant.backward is None

    def test_asymmetric_w_a(self):
        model = build_model()
        direct_cast(model, "mx4", "mx9")
        for _, m in quantizable_modules(model):
            assert m.quant.weight.name == "MX4"
            assert m.quant.activation.name == "MX9"

    def test_changes_outputs_but_not_weights(self):
        model = build_model()
        x = Tensor(np.random.default_rng(1).normal(size=(2, 32)))
        before_weights = model.state_dict()
        baseline = model(x).data.copy()
        direct_cast(model, "mx4")
        cast_out = model(x).data
        assert not np.allclose(baseline, cast_out)
        for k, v in model.state_dict().items():
            np.testing.assert_array_equal(v, before_weights[k])

    def test_clear_restores_baseline(self):
        model = build_model()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 32)))
        baseline = model(x).data.copy()
        direct_cast(model, "mx4")
        clear_quantization(model)
        np.testing.assert_array_equal(model(x).data, baseline)

    def test_none_none_clears(self):
        model = build_model()
        direct_cast(model, "mx4")
        direct_cast(model, None)
        assert all(m.quant is None for _, m in quantizable_modules(model))

    def test_embedding_quantization(self):
        model = DLRM(rng=np.random.default_rng(3))
        direct_cast(model, "mx6", quantize_embeddings=True)
        assert all(e.storage_quant is not None for e in model.embeddings)
        clear_quantization(model)
        assert all(e.storage_quant is None for e in model.embeddings)


class TestCastWeights:
    def test_weights_change_in_place(self):
        model = build_model()
        before = model.state_dict()
        cast_weights(model, "mx4")
        after = model.state_dict()
        assert not np.allclose(before["layers.0.weight"], after["layers.0.weight"])
        # biases (1-D) are left alone
        np.testing.assert_array_equal(before["layers.0.bias"], after["layers.0.bias"])

    def test_values_are_representable(self):
        model = build_model()
        cast_weights(model, "mx4")
        fmt = get_format("mx4")
        w = model.state_dict()["layers.0.weight"]
        np.testing.assert_array_equal(fmt.quantize(w, axis=0), w)

    def test_format_instance_accepted(self):
        model = build_model()
        cast_weights(model, get_format("mx9"))


class TestPolicyCasting:
    """direct_cast / cast_weights accept declarative PolicySpecs."""

    def _three_layer(self):
        rng = np.random.default_rng(7)
        return Sequential(
            Linear(32, 16, rng=rng), Linear(16, 16, rng=rng), Linear(16, 4, rng=rng)
        )

    def test_direct_cast_with_policy(self):
        from repro.spec import FirstLastHighPolicy

        model = self._three_layer()
        direct_cast(model, FirstLastHighPolicy(quant="mx4", high=None))
        modules = [m for _, m in quantizable_modules(model)]
        assert modules[0].quant is None
        assert modules[-1].quant is None
        assert modules[1].quant.weight.name == "MX4"

    def test_direct_cast_policy_dict(self):
        from repro.spec import UniformPolicy

        model = self._three_layer()
        direct_cast(model, UniformPolicy(quant="mx6").to_dict())
        assert all(m.quant.weight.name == "MX6" for _, m in quantizable_modules(model))

    def test_direct_cast_policy_rejects_extras(self):
        from repro.spec import UniformPolicy

        model = self._three_layer()
        with pytest.raises(ValueError, match="activation_format"):
            direct_cast(model, UniformPolicy(quant="mx6"), "mx9")
        with pytest.raises(ValueError, match="quantize_embeddings"):
            direct_cast(model, UniformPolicy(quant="mx6"), quantize_embeddings=True)

    def test_cast_weights_with_policy_spares_boundary(self):
        from repro.spec import FirstLastHighPolicy

        model = self._three_layer()
        before = model.state_dict()
        cast_weights(model, FirstLastHighPolicy(quant="mx4", high=None))
        after = model.state_dict()
        # boundary layers stay FP32-exact, middle layer is cast
        np.testing.assert_array_equal(before["layers.0.weight"], after["layers.0.weight"])
        np.testing.assert_array_equal(before["layers.2.weight"], after["layers.2.weight"])
        assert not np.allclose(before["layers.1.weight"], after["layers.1.weight"])
        fmt = get_format("mx4")
        np.testing.assert_array_equal(
            fmt.quantize(after["layers.1.weight"], axis=0), after["layers.1.weight"]
        )

    def test_cast_weights_policy_matches_uniform_format(self):
        """A uniform policy casts Linear weights exactly like the format
        path (embeddings excluded: they sit outside quantizable modules)."""
        from repro.spec import UniformPolicy

        model_a = self._three_layer()
        model_b = self._three_layer()
        model_b.load_state_dict(model_a.state_dict())
        cast_weights(model_a, "mx6")
        cast_weights(model_b, UniformPolicy(quant="mx6"))
        for (name, a), (_, b) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

    def test_cast_weights_policy_dict_per_role(self):
        """Each module casts with its own weight-role format."""
        from repro.spec import PolicyRule, RulePolicy

        model = self._three_layer()
        before = model.state_dict()
        policy = RulePolicy(
            rules=(PolicyRule(quant="mx4", name_glob="layers.0"),),
            default=None,
        )
        cast_weights(model, policy)
        after = model.state_dict()
        assert not np.allclose(before["layers.0.weight"], after["layers.0.weight"])
        np.testing.assert_array_equal(before["layers.1.weight"], after["layers.1.weight"])

    def test_attention_params_cast_once(self):
        """MHA owns its projection Linears; each array casts exactly once."""
        from repro.nn.attention import MultiHeadAttention
        from repro.spec import UniformPolicy

        rng = np.random.default_rng(8)
        model = MultiHeadAttention(16, 2, rng=rng)
        cast_weights(model, UniformPolicy(quant="mx6"))
        fmt = get_format("mx6")
        w = model.q_proj.weight.data
        np.testing.assert_array_equal(fmt.quantize(w, axis=0), w)

    def test_child_rule_beats_parent_spec(self):
        """cast_weights must bake the same format the forward pass would
        apply: the child module's own rule, not the parent attention's."""
        from repro.flow.policy import apply_quant_policy
        from repro.nn.attention import MultiHeadAttention
        from repro.spec import PolicyRule, RulePolicy

        policy = RulePolicy(
            rules=(PolicyRule(quant="mx4", name_glob="*q_proj*"),),
            default="mx9",
        )
        rng = np.random.default_rng(9)
        runtime = MultiHeadAttention(16, 2, rng=rng)
        apply_quant_policy(runtime, policy)
        assert runtime.q_proj.quant.weight.name == "MX4"  # child rule wins

        baked = MultiHeadAttention(16, 2, rng=np.random.default_rng(9))
        baked.load_state_dict(runtime.state_dict())
        cast_weights(baked, policy)
        mx4 = get_format("mx4")
        np.testing.assert_array_equal(
            baked.q_proj.weight.data,
            mx4.quantize(runtime.q_proj.weight.data, axis=0),
        )

    def test_child_fp32_rule_not_cast_by_parent(self):
        """A child the policy leaves FP32 stays exact even when its parent
        attention module resolves to a quantized spec."""
        from repro.nn.attention import MultiHeadAttention
        from repro.spec import PolicyRule, RulePolicy

        policy = RulePolicy(
            rules=(PolicyRule(quant=None, name_glob="*q_proj*"),),
            default="mx4",
        )
        model = MultiHeadAttention(16, 2, rng=np.random.default_rng(10))
        before_q = model.q_proj.weight.data.copy()
        before_k = model.k_proj.weight.data.copy()
        cast_weights(model, policy)
        np.testing.assert_array_equal(model.q_proj.weight.data, before_q)
        mx4 = get_format("mx4")
        np.testing.assert_array_equal(
            model.k_proj.weight.data, mx4.quantize(before_k, axis=0)
        )

    def test_policy_rounding_honored(self):
        """A policy payload declaring a rounding mode must bake with that
        mode, not silently fall back to nearest."""
        from repro.nn.quantized import QuantSpec
        from repro.spec import UniformPolicy

        payload = QuantSpec(weight="mx4", rounding="truncate").to_dict()
        model_a = self._three_layer()
        model_b = self._three_layer()
        model_b.load_state_dict(model_a.state_dict())
        cast_weights(model_a, UniformPolicy(quant=payload))
        cast_weights(model_b, UniformPolicy(quant=dict(payload, rounding="nearest")))
        # truncate vs nearest rounding must produce different castings
        assert any(
            not np.array_equal(a.data, b.data)
            for (_, a), (_, b) in zip(
                model_a.named_parameters(), model_b.named_parameters()
            )
        )

    def test_policy_stochastic_without_rng_fails_loudly(self):
        """Stochastic payloads without a generator error (matching the
        runtime path) instead of silently casting with nearest."""
        from repro.nn.quantized import QuantSpec
        from repro.spec import UniformPolicy

        payload = QuantSpec(weight="mx4", rounding="stochastic").to_dict()
        with pytest.raises(ValueError, match="stochastic rounding requires"):
            cast_weights(self._three_layer(), UniformPolicy(quant=payload))
