"""Unit tests for direct cast and weight casting."""

import numpy as np
import pytest

from repro.flow.cast import cast_weights, clear_quantization, direct_cast
from repro.flow.policy import quantizable_modules
from repro.formats.registry import get_format
from repro.models.dlrm import DLRM
from repro.nn.layers import Linear, Sequential
from repro.nn.tensor import Tensor


def build_model():
    rng = np.random.default_rng(0)
    return Sequential(Linear(32, 16, rng=rng), Linear(16, 4, rng=rng))


class TestDirectCast:
    def test_installs_specs(self):
        model = build_model()
        direct_cast(model, "mx6")
        for _, m in quantizable_modules(model):
            assert m.quant.weight.name == "MX6"
            assert m.quant.activation.name == "MX6"
            assert m.quant.backward is None

    def test_asymmetric_w_a(self):
        model = build_model()
        direct_cast(model, "mx4", "mx9")
        for _, m in quantizable_modules(model):
            assert m.quant.weight.name == "MX4"
            assert m.quant.activation.name == "MX9"

    def test_changes_outputs_but_not_weights(self):
        model = build_model()
        x = Tensor(np.random.default_rng(1).normal(size=(2, 32)))
        before_weights = model.state_dict()
        baseline = model(x).data.copy()
        direct_cast(model, "mx4")
        cast_out = model(x).data
        assert not np.allclose(baseline, cast_out)
        for k, v in model.state_dict().items():
            np.testing.assert_array_equal(v, before_weights[k])

    def test_clear_restores_baseline(self):
        model = build_model()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 32)))
        baseline = model(x).data.copy()
        direct_cast(model, "mx4")
        clear_quantization(model)
        np.testing.assert_array_equal(model(x).data, baseline)

    def test_none_none_clears(self):
        model = build_model()
        direct_cast(model, "mx4")
        direct_cast(model, None)
        assert all(m.quant is None for _, m in quantizable_modules(model))

    def test_embedding_quantization(self):
        model = DLRM(rng=np.random.default_rng(3))
        direct_cast(model, "mx6", quantize_embeddings=True)
        assert all(e.storage_quant is not None for e in model.embeddings)
        clear_quantization(model)
        assert all(e.storage_quant is None for e in model.embeddings)


class TestCastWeights:
    def test_weights_change_in_place(self):
        model = build_model()
        before = model.state_dict()
        cast_weights(model, "mx4")
        after = model.state_dict()
        assert not np.allclose(before["layers.0.weight"], after["layers.0.weight"])
        # biases (1-D) are left alone
        np.testing.assert_array_equal(before["layers.0.bias"], after["layers.0.bias"])

    def test_values_are_representable(self):
        model = build_model()
        cast_weights(model, "mx4")
        fmt = get_format("mx4")
        w = model.state_dict()["layers.0.weight"]
        np.testing.assert_array_equal(fmt.quantize(w, axis=0), w)

    def test_format_instance_accepted(self):
        model = build_model()
        cast_weights(model, get_format("mx9"))
