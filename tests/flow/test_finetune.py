"""Unit tests for quantization-aware fine-tuning."""

import numpy as np

from repro.flow.cast import direct_cast
from repro.flow.compute_flow import TrainConfig, fit
from repro.flow.finetune import finetune
from repro.flow.policy import quantizable_modules
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor


class ToyModel(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.l1 = Linear(8, 16, rng=rng)
        self.l2 = Linear(16, 1, rng=rng)
        self.drop = Dropout(0.3, rng=rng)

    def forward(self, x):
        return self.l2(self.drop(self.l1(x).relu())).reshape(-1)

    def loss(self, batch):
        x, y = batch
        return mse_loss(self.forward(Tensor(x)), y)


def batches(steps, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=8)
    for _ in range(steps):
        x = rng.normal(size=(32, 8))
        yield x, np.tanh(x @ w)


def eval_mse(model, seed=99):
    x, y = next(iter(batches(1, seed)))
    model.eval()
    pred = model.forward(Tensor(x)).data
    return float(np.mean((pred - y) ** 2))


class TestFinetune:
    def test_recovers_cast_degradation(self):
        # pre-train in FP32
        model = ToyModel(seed=1)
        fit(model, batches(150, seed=2), TrainConfig(steps=150, lr=3e-3))
        direct_cast(model, "mx4")
        cast_mse = eval_mse(model)

        finetune(model, batches(120, seed=3), "mx4", steps=120, lr=1e-3)
        tuned_mse = eval_mse(model)
        assert tuned_mse < cast_mse

    def test_installs_finetune_spec(self):
        model = ToyModel(seed=1)
        finetune(model, batches(2, seed=2), "mx6", steps=2)
        for _, m in quantizable_modules(model):
            assert m.quant.activation.name == "MX6"
            assert m.quant.backward is None  # FP32 backward per the recipe

    def test_dropout_disabled(self):
        model = ToyModel(seed=1)
        assert model.drop.p == 0.3
        finetune(model, batches(2, seed=2), "mx6", steps=2)
        assert model.drop.p == 0.0

    def test_backward_format_override(self):
        model = ToyModel(seed=1)
        finetune(model, batches(2, seed=2), "mx4", backward_format="mx9", steps=2)
        for _, m in quantizable_modules(model):
            assert m.quant.backward.name == "MX9"
