"""Unit tests for scale-factor selection."""

import numpy as np
import pytest

from repro.core.scaling import (
    DelayedScaler,
    amax_scale,
    exponent_range,
    floor_log2,
    pow2_scale,
    shared_exponent,
)


class TestFloorLog2:
    def test_exact_powers(self):
        x = np.array([1.0, 2.0, 4.0, 0.5, 0.25])
        np.testing.assert_array_equal(floor_log2(x), [0, 1, 2, -1, -2])

    def test_between_powers(self):
        x = np.array([1.5, 3.99, 0.75])
        np.testing.assert_array_equal(floor_log2(x), [0, 1, -1])

    def test_sign_ignored(self):
        assert floor_log2(np.array([-8.0]))[0] == 3

    def test_zero_maps_to_sentinel(self):
        assert floor_log2(np.array([0.0]))[0] < -(10**6)


class TestSharedExponent:
    def test_block_max_wins(self):
        x = np.array([[0.1, 0.2, 7.9, 0.3]])
        assert shared_exponent(x, axis=-1)[0] == 2  # floor(log2 7.9)

    def test_clamped_to_d1_range(self):
        x = np.array([[1e300]])
        lo, hi = exponent_range(8)
        assert shared_exponent(x, axis=-1, d1=8)[0] == hi

    def test_zero_block_clamps_low(self):
        lo, _ = exponent_range(8)
        assert shared_exponent(np.zeros((1, 4)), axis=-1)[0] == lo


class TestScales:
    def test_amax_scale(self):
        assert amax_scale(np.array(6.0), 3)[()] == pytest.approx(2.0)

    def test_amax_scale_zero(self):
        assert amax_scale(np.array(0.0), 3)[()] == 1.0

    def test_pow2_scale_rounds_up(self):
        # ideal 2.4 -> 4 (never clips)
        assert pow2_scale(np.array(7.2), 3)[()] == 4.0

    def test_pow2_scale_exact(self):
        assert pow2_scale(np.array(6.0), 3)[()] == 2.0

    def test_pow2_scale_exact_powers_of_two(self):
        """Regression: float log2 of 2^-k can land at -k +/- ulp, so the old
        ceil(log2(ideal)) was off by one scale near exact powers of two.
        frexp must keep every exact power of two fixed."""
        for qmax in (1.0, 3.0, 7.0, 15.0):
            exps = np.arange(-300, 301)
            amax = qmax * np.exp2(exps.astype(np.float64))
            scale = pow2_scale(amax, qmax)
            np.testing.assert_array_equal(scale, np.exp2(exps.astype(np.float64)))

    def test_pow2_scale_never_below_ideal(self):
        rng = np.random.default_rng(0)
        amax = np.exp(rng.uniform(-300, 300, size=2000))
        qmax = 7.0
        scale = pow2_scale(amax, qmax)
        ideal = amax / qmax
        assert np.all(scale >= ideal)          # never clips
        assert np.all(scale < 2.0 * ideal)     # tightest power of two
        mant, _ = np.frexp(scale)
        np.testing.assert_array_equal(mant, 0.5)  # all exact powers of two


class TestDelayedScaler:
    def test_first_call_uses_current(self):
        s = DelayedScaler(qmax=10.0, window=4)
        assert s.scale(np.array([5.0])) == pytest.approx(0.5)

    def test_history_drives_scale(self):
        s = DelayedScaler(qmax=10.0, window=4)
        s.observe(np.array([20.0]))
        # current tensor is small but history says 20
        assert s.scale(np.array([1.0])) == pytest.approx(2.0)

    def test_window_eviction(self):
        s = DelayedScaler(qmax=10.0, window=2)
        s.observe(np.array([100.0]))
        s.observe(np.array([1.0]))
        s.observe(np.array([1.0]))  # evicts the 100
        assert s.history_amax == 1.0

    def test_scale_and_observe(self):
        s = DelayedScaler(qmax=10.0, window=4)
        first = s.scale_and_observe(np.array([5.0]))
        second = s.scale(np.array([1.0]))
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(0.5)  # from history now

    def test_empty_and_zero(self):
        s = DelayedScaler(qmax=10.0)
        assert s.scale() == 1.0
        assert s.scale(np.zeros(3)) == 1.0

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            DelayedScaler(qmax=1.0, window=0)
