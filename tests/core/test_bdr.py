"""Unit tests for the BDR configuration space."""

import pytest

from repro.core.bdr import BDRConfig


class TestValidation:
    def test_negative_mantissa_rejected(self):
        with pytest.raises(ValueError, match="mantissa"):
            BDRConfig(m=-1, k1=16, d1=8)

    def test_k2_must_divide_k1(self):
        with pytest.raises(ValueError, match="divide"):
            BDRConfig(m=3, k1=16, d1=8, k2=3, d2=1, ss_type="pow2")

    def test_d2_and_ss_type_must_agree(self):
        with pytest.raises(ValueError, match="d2 == 0"):
            BDRConfig(m=3, k1=16, d1=8, k2=2, d2=0, ss_type="pow2")
        with pytest.raises(ValueError, match="d2 == 0"):
            BDRConfig(m=3, k1=16, d1=8, k2=2, d2=1, ss_type="none")

    def test_second_level_needs_smaller_k2(self):
        with pytest.raises(ValueError, match="k2 < k1"):
            BDRConfig(m=3, k1=16, d1=8, k2=16, d2=1, ss_type="pow2")

    def test_unknown_scale_types_rejected(self):
        with pytest.raises(ValueError, match="s_type"):
            BDRConfig(m=3, k1=16, d1=8, s_type="int")
        with pytest.raises(ValueError, match="ss_type"):
            BDRConfig(m=3, k1=16, d1=8, k2=2, d2=1, ss_type="fp32")

    def test_zero_k_rejected(self):
        with pytest.raises(ValueError):
            BDRConfig(m=3, k1=0, d1=8)


class TestDerived:
    def test_beta(self):
        assert BDRConfig.mx(m=7, d2=1).beta == 1
        assert BDRConfig.mx(m=7, d2=2).beta == 3
        assert BDRConfig.bfp(m=7).beta == 0

    def test_mx_bits_per_element_match_table2(self):
        assert BDRConfig.mx(m=7).bits_per_element == 9.0
        assert BDRConfig.mx(m=4).bits_per_element == 6.0
        assert BDRConfig.mx(m=2).bits_per_element == 4.0

    def test_bfp_bits(self):
        # MSFP16: sign + 7 mantissa + 8/16 shared exponent
        assert BDRConfig.bfp(m=7, k1=16).bits_per_element == 8.5

    def test_int_bits(self):
        cfg = BDRConfig.int_sw(m=7, k1=1024)
        assert cfg.bits_per_element == pytest.approx(8.0 + 32 / 1024)

    def test_qmax(self):
        assert BDRConfig.mx(m=2).qmax == 3
        assert BDRConfig.mx(m=7).qmax == 127

    def test_num_subblocks(self):
        assert BDRConfig.mx(m=7).num_subblocks == 8

    def test_family_classification(self):
        assert BDRConfig.mx(m=7).family == "mx"
        assert BDRConfig.bfp(m=7).family == "bfp"
        assert BDRConfig.int_sw(m=7).family == "int"
        assert BDRConfig.vsq(m=3).family == "vsq"

    def test_label_and_name(self):
        cfg = BDRConfig.mx(m=7)
        assert "m=7" in cfg.label
        named = cfg.with_name("MX9")
        assert named.label == "MX9"
        # name does not participate in equality
        assert named == cfg

    def test_frozen(self):
        with pytest.raises(Exception):
            BDRConfig.mx(m=7).m = 3
