"""Unit tests for rounding primitives."""

import numpy as np
import pytest

from repro.core.rounding import (
    apply_rounding,
    round_nearest_even,
    round_stochastic,
    round_truncate,
)


class TestNearestEven:
    def test_ties_to_even(self):
        x = np.array([0.5, 1.5, 2.5, 3.5, -0.5, -1.5])
        np.testing.assert_array_equal(round_nearest_even(x), [0, 2, 2, 4, -0, -2])

    def test_ordinary_rounding(self):
        x = np.array([0.4, 0.6, -0.4, -0.6])
        np.testing.assert_array_equal(round_nearest_even(x), [0, 1, -0, -1])


class TestTruncate:
    def test_toward_zero(self):
        x = np.array([1.9, -1.9, 0.5, -0.5])
        np.testing.assert_array_equal(round_truncate(x), [1, -1, 0, -0])


class TestStochastic:
    def test_unbiased(self):
        rng = np.random.default_rng(0)
        x = np.full(200_000, 0.3)
        rounded = round_stochastic(x, rng)
        assert set(np.unique(rounded)) <= {0.0, 1.0}
        assert rounded.mean() == pytest.approx(0.3, abs=0.01)

    def test_integers_pass_through(self):
        rng = np.random.default_rng(0)
        x = np.array([1.0, -3.0, 0.0])
        np.testing.assert_array_equal(round_stochastic(x, rng), x)


class TestDispatch:
    def test_modes(self):
        x = np.array([1.4])
        assert apply_rounding(x, "nearest")[0] == 1.0
        assert apply_rounding(x, "truncate")[0] == 1.0

    def test_stochastic_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            apply_rounding(np.array([0.5]), "stochastic")

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown rounding"):
            apply_rounding(np.array([0.5]), "floor")
