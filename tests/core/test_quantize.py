"""Unit tests for the two-level quantization engine."""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.quantize import bdr_quantize, bdr_quantize_detailed

MX9 = BDRConfig.mx(m=7)
MX4 = BDRConfig.mx(m=2)
BFP8 = BDRConfig.bfp(m=7, k1=16)
INT8 = BDRConfig.int_sw(m=7, k1=64)
VSQ6 = BDRConfig.vsq(m=5, d2=6, k1=64, k2=16)

ALL_CONFIGS = [MX9, MX4, BFP8, INT8, VSQ6]


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestBasics:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_shape_preserved(self, config, rng):
        x = rng.normal(size=(3, 5, 37))
        assert bdr_quantize(x, config).shape == x.shape

    @pytest.mark.parametrize("config", [MX9, MX4, BFP8, INT8])
    def test_idempotent(self, config, rng):
        x = rng.normal(size=(4, 64))
        once = bdr_quantize(x, config)
        twice = bdr_quantize(once, config)
        np.testing.assert_allclose(twice, once, rtol=0, atol=0)

    def test_vsq_near_idempotent(self, rng):
        """VSQ re-derives ceil-rounded sub-scales, so a second pass may move
        values — but never by more than one grid step."""
        x = rng.normal(size=(4, 64))
        once = bdr_quantize_detailed(x, VSQ6)
        twice = bdr_quantize(once.values, VSQ6)
        step = once.step.reshape(once.values.shape)
        assert np.all(np.abs(twice - once.values) <= step + 1e-12)

    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_zeros_stay_zero(self, config):
        x = np.zeros((2, 32))
        np.testing.assert_array_equal(bdr_quantize(x, config), x)

    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_sign_symmetry(self, config, rng):
        x = rng.normal(size=(2, 64))
        np.testing.assert_allclose(
            bdr_quantize(-x, config), -bdr_quantize(x, config)
        )

    def test_empty_input(self):
        x = np.zeros((0, 16))
        assert bdr_quantize(x, MX9).shape == (0, 16)

    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_non_multiple_length_padded(self, config, rng):
        """Lengths not divisible by k1 must round-trip via zero padding."""
        x = rng.normal(size=(2, 13))
        q = bdr_quantize(x, config)
        assert q.shape == x.shape
        assert np.all(np.isfinite(q))

    def test_axis_selection(self, rng):
        x = rng.normal(size=(16, 8))
        q0 = bdr_quantize(x, MX9, axis=0)
        q1 = bdr_quantize(x.T, MX9, axis=1).T
        np.testing.assert_allclose(q0, q1)

    def test_quantization_not_transpose_commutative(self, rng):
        """Section V: MX is directional — Q(X^T) != Q(X)^T in general."""
        x = rng.normal(size=(32, 32))
        q_then_t = bdr_quantize(x, MX4, axis=-1).T
        t_then_q = bdr_quantize(x.T, MX4, axis=-1)
        assert not np.allclose(q_then_t, t_then_q)


class TestErrorBounds:
    def test_elementwise_error_bound_eq8(self, rng):
        """|Q(x) - x| <= 2^(E - tau - m) per Eq. 8 of the paper, with the
        saturating block-max corner allowed one full step."""
        x = rng.normal(size=(8, 16))
        detail = bdr_quantize_detailed(x, MX9)
        err = np.abs(detail.values - x).reshape(8, 16)
        step = detail.step.reshape(8, 16)
        saturated = np.abs(detail.codes).reshape(8, 16) >= MX9.qmax
        bound = np.where(saturated, step, step / 2.0)
        assert np.all(err <= bound + 1e-12)

    def test_bfp_relative_error(self, rng):
        x = rng.normal(size=(32, 16))
        q = bdr_quantize(x, BFP8)
        # the block max has error at most 2^-m relative
        amax = np.abs(x).max(axis=-1)
        err = np.abs(q - x).max(axis=-1)
        assert np.all(err <= amax * 2.0**-6)


class TestDetailed:
    def test_codes_within_range(self, rng):
        x = rng.normal(size=(4, 32)) * 100
        detail = bdr_quantize_detailed(x, MX4)
        assert np.all(np.abs(detail.codes) <= MX4.qmax)

    def test_values_equal_codes_times_step(self, rng):
        x = rng.normal(size=(4, 32))
        detail = bdr_quantize_detailed(x, MX9)
        reconstructed = (detail.codes * detail.step).reshape(4, 32)
        np.testing.assert_allclose(detail.values, reconstructed)

    def test_subscale_is_pow2_shift(self, rng):
        x = rng.normal(size=(4, 32))
        detail = bdr_quantize_detailed(x, MX9)
        tau = -np.log2(detail.sub_scale)
        assert np.all((tau >= 0) & (tau <= MX9.beta))
        np.testing.assert_array_equal(tau, np.round(tau))


class TestIntPath:
    def test_scale_is_fp32(self, rng):
        x = rng.normal(size=(2, 64))
        detail = bdr_quantize_detailed(x, INT8)
        np.testing.assert_array_equal(
            detail.scale, detail.scale.astype(np.float32).astype(np.float64)
        )

    def test_scale_override(self, rng):
        x = rng.normal(size=(2, 64))
        q = bdr_quantize(x, INT8, scale_override=0.25)
        grid = q / np.float64(np.float32(0.25))
        np.testing.assert_allclose(grid, np.round(grid), atol=1e-9)

    def test_max_value_maps_to_qmax(self):
        x = np.zeros((1, 64))
        x[0, 0] = 12.7
        detail = bdr_quantize_detailed(x, INT8)
        assert detail.codes.max() == INT8.qmax


class TestVSQPath:
    def test_subscales_are_small_uints(self, rng):
        x = rng.normal(size=(2, 64))
        detail = bdr_quantize_detailed(x, VSQ6)
        ss = detail.sub_scale
        assert np.all(ss >= 0)
        assert np.all(ss <= (1 << VSQ6.d2) - 1)
        np.testing.assert_array_equal(ss, np.round(ss))

    def test_ceil_subscale_never_clips(self, rng):
        """VS-Quant rounds sub-scales up, so no element can clip."""
        x = rng.normal(size=(8, 64)) * rng.uniform(0.01, 100, size=(8, 1))
        detail = bdr_quantize_detailed(x, VSQ6)
        assert np.all(np.abs(detail.codes) <= VSQ6.qmax)
        # error bounded by half a step everywhere (no saturation error)
        err = np.abs(detail.values - x)
        step = detail.step.reshape(err.shape)
        assert np.all(err <= step / 2 + 1e-12)

    def test_zero_subblocks(self):
        x = np.zeros((1, 64))
        x[0, :16] = 1.0
        q = bdr_quantize(x, VSQ6)
        np.testing.assert_array_equal(q[0, 16:], 0.0)
