"""Property-based tests (hypothesis) on the core quantization invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.core.bdr import BDRConfig
from repro.core.quantize import bdr_quantize, bdr_quantize_detailed
from repro.core.theorem import qsnr_lower_bound
from repro.fidelity.qsnr import qsnr

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


def vectors(min_len=1, max_len=80):
    """Finite vectors with magnitudes in FP32's normal range (or zero).

    Theorem 1 assumes FP32 inputs; float64 subnormals below FP32's exponent
    range would hit the 8-bit shared-exponent clamp and trivially violate
    the bound, so they are flushed to zero as FP32 hardware would.
    """
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=1, min_side=min_len, max_side=max_len),
        elements=finite_floats,
    ).map(lambda a: np.where(np.abs(a) < 1e-30, 0.0, a))


mx_configs = st.sampled_from(
    [
        BDRConfig.mx(m=2),
        BDRConfig.mx(m=4),
        BDRConfig.mx(m=7),
        BDRConfig.bfp(m=3, k1=16),
        BDRConfig.bfp(m=7, k1=8),
        BDRConfig(m=4, k1=32, d1=8, s_type="pow2", k2=4, d2=2, ss_type="pow2"),
    ]
)

all_configs = st.sampled_from(
    [
        BDRConfig.mx(m=2),
        BDRConfig.mx(m=7),
        BDRConfig.bfp(m=5, k1=16),
        BDRConfig.int_sw(m=7, k1=64),
        BDRConfig.vsq(m=3, d2=4, k1=64, k2=8),
    ]
)


@given(x=vectors(), config=all_configs)
@settings(max_examples=60, deadline=None)
def test_idempotence(x, config):
    """Quantized values are fixed points of the quantizer.

    VSQ is exempt: its ceil-rounded integer sub-scales are re-derived from
    the already-quantized data on a second pass, shifting the grid slightly
    (see test_vsq_near_idempotence below).
    """
    if config.ss_type == "int":
        return
    once = bdr_quantize(x, config)
    twice = bdr_quantize(once, config)
    np.testing.assert_allclose(twice, once, rtol=0, atol=0)


@given(x=vectors(min_len=8))
@settings(max_examples=40, deadline=None)
def test_vsq_near_idempotence(x):
    """A second VSQ pass may move values, but only within one grid step."""
    config = BDRConfig.vsq(m=5, d2=6, k1=64, k2=8)
    once = bdr_quantize_detailed(x, config)
    twice = bdr_quantize(once.values, config)
    step = once.step.reshape(-1)[: x.size]
    assert np.all(np.abs(twice - once.values) <= step + 1e-12)


@given(x=vectors(), config=all_configs)
@settings(max_examples=60, deadline=None)
def test_sign_antisymmetry(x, config):
    np.testing.assert_allclose(bdr_quantize(-x, config), -bdr_quantize(x, config))


@given(x=vectors(), config=mx_configs, t=st.integers(min_value=-20, max_value=20))
@settings(max_examples=60, deadline=None)
def test_pow2_scale_equivariance(x, config, t):
    """Power-of-two-scaled formats commute with power-of-two rescaling."""
    scaled = bdr_quantize(x * 2.0**t, config)
    np.testing.assert_allclose(scaled, bdr_quantize(x, config) * 2.0**t, rtol=1e-12)


@given(x=vectors(min_len=2), config=mx_configs)
@settings(max_examples=60, deadline=None)
def test_theorem1_bound_holds_pointwise(x, config):
    """QSNR of any nonzero vector is at least the Theorem 1 bound."""
    if not np.any(x):
        return
    q = bdr_quantize(x, config)
    measured = qsnr(x, q)
    bound = qsnr_lower_bound(config, n=len(x))
    assert measured >= bound - 1e-6


@given(x=vectors(), config=mx_configs)
@settings(max_examples=60, deadline=None)
def test_elementwise_error_bound(x, config):
    """|Q(x) - x| <= 2^(E - tau - m) elementwise (Eq. 8), except that the
    saturating block-max corner may reach one full step (see the
    quantize-module docstring)."""
    detail = bdr_quantize_detailed(x, config)
    err = np.abs(detail.values - x)
    step = detail.step.reshape(-1)[: x.size]
    saturated = np.abs(detail.codes).reshape(-1)[: x.size] >= config.qmax
    bound = np.where(saturated, step, step / 2)
    assert np.all(err <= bound + 1e-15)


@given(x=vectors())
@settings(max_examples=40, deadline=None)
def test_more_mantissa_never_hurts(x):
    """Noise power is non-increasing in mantissa bits at fixed structure."""
    errs = []
    for m in (2, 4, 7):
        q = bdr_quantize(x, BDRConfig.mx(m=m))
        errs.append(float(np.sum((q - x) ** 2)))
    assert errs[0] >= errs[1] >= errs[2]
