"""Unit tests for the MX format definitions."""

import numpy as np
import pytest

from repro.core.mx import MX4, MX6, MX9, MX_FORMATS, mx_quantize


class TestTable2Definitions:
    @pytest.mark.parametrize(
        "fmt,m,bits", [(MX9, 7, 9.0), (MX6, 4, 6.0), (MX4, 2, 4.0)]
    )
    def test_parameters(self, fmt, m, bits):
        assert fmt.m == m
        assert fmt.k1 == 16
        assert fmt.k2 == 2
        assert fmt.d1 == 8
        assert fmt.d2 == 1
        assert fmt.bits_per_element == bits

    def test_names(self):
        assert set(MX_FORMATS) == {"MX9", "MX6", "MX4"}


class TestQuantize:
    def test_string_lookup(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 32))
        np.testing.assert_array_equal(mx_quantize(x, "mx9"), mx_quantize(x, MX9))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown MX format"):
            mx_quantize(np.zeros(4), "mx8")

    def test_precision_ordering(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(64, 256))
        errors = {
            name: float(np.sum((mx_quantize(x, name) - x) ** 2))
            for name in ("MX9", "MX6", "MX4")
        }
        assert errors["MX9"] < errors["MX6"] < errors["MX4"]

    def test_directional_axis(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(16, 16)) * np.logspace(0, 3, 16)[:, None]
        q_rows = mx_quantize(x, "MX4", axis=-1)
        q_cols = mx_quantize(x, "MX4", axis=0)
        assert not np.allclose(q_rows, q_cols)

    def test_microexponent_improves_on_bfp(self):
        """The 1-bit shared microexponent must beat plain BFP at equal m."""
        from repro.core.bdr import BDRConfig
        from repro.core.quantize import bdr_quantize

        rng = np.random.default_rng(11)
        x = rng.normal(size=(256, 256))
        mx_err = np.sum((mx_quantize(x, "MX9") - x) ** 2)
        bfp_err = np.sum((bdr_quantize(x, BDRConfig.bfp(m=7, k1=16)) - x) ** 2)
        assert mx_err < bfp_err
