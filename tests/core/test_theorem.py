"""Unit tests for the Theorem 1 QSNR lower bound."""

import math

import pytest

from repro.core.bdr import BDRConfig
from repro.core.theorem import qsnr_lower_bound, qsnr_lower_bound_params


class TestFormula:
    def test_mx9_value(self):
        # m=7, k1=16, k2=2, d2=1 -> beta=1:
        # 6.02*7 + 10*log10(4 / (16 + 3*2)) = 42.14 - 7.40 = 34.74
        expected = 6.02 * 7 + 10 * math.log10(4 / 22)
        assert qsnr_lower_bound(BDRConfig.mx(m=7)) == pytest.approx(expected)

    def test_bfp_degenerates_to_classic_bound(self):
        # d2=0 -> beta=0 -> bound = 6.02 m - 10 log10(min(N,k1))
        bound = qsnr_lower_bound(BDRConfig.bfp(m=7, k1=16))
        assert bound == pytest.approx(6.02 * 7 - 10 * math.log10(16))

    def test_linear_in_mantissa(self):
        bounds = [qsnr_lower_bound(BDRConfig.mx(m=m)) for m in range(1, 8)]
        deltas = [b2 - b1 for b1, b2 in zip(bounds, bounds[1:])]
        for d in deltas:
            assert d == pytest.approx(6.02)

    def test_monotonic_in_k1(self):
        b16 = qsnr_lower_bound_params(m=4, k1=16, k2=2, d2=1)
        b64 = qsnr_lower_bound_params(m=4, k1=64, k2=2, d2=1)
        assert b16 > b64

    def test_small_n_improves_bound(self):
        full = qsnr_lower_bound_params(m=4, k1=64, k2=2, d2=1, n=64)
        small = qsnr_lower_bound_params(m=4, k1=64, k2=2, d2=1, n=8)
        assert small > full

    def test_large_beta_asymptote(self):
        # for huge d2 the bound approaches 6.02 m - 10 log10 k2
        bound = qsnr_lower_bound_params(m=4, k1=64, k2=16, d2=10)
        assert bound == pytest.approx(6.02 * 4 - 10 * math.log10(16), abs=0.01)

    def test_no_overflow_at_extreme_d2(self):
        assert math.isfinite(qsnr_lower_bound_params(m=4, k1=64, k2=16, d2=30))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            qsnr_lower_bound_params(m=-1, k1=16, k2=2, d2=1)
        with pytest.raises(ValueError):
            qsnr_lower_bound_params(m=3, k1=0, k2=2, d2=1)
