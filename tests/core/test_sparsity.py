"""Unit tests for N:M structured sparsity."""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.sparsity import (
    apply_nm_sparsity,
    density,
    nm_sparsity_mask,
    sparse_quantize,
)


class TestMask:
    def test_2_4_keeps_half(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 64))
        mask = nm_sparsity_mask(x, 2, 4)
        assert mask.sum() == x.size // 2
        # exactly 2 survivors per group of 4
        groups = mask.reshape(8, 16, 4)
        np.testing.assert_array_equal(groups.sum(axis=-1), 2)

    def test_keeps_largest_magnitudes(self):
        x = np.array([[1.0, -5.0, 0.1, 3.0]])
        mask = nm_sparsity_mask(x, 2, 4)
        np.testing.assert_array_equal(mask, [[False, True, False, True]])

    def test_axis_selection(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 6))
        m0 = nm_sparsity_mask(x, 1, 2, axis=0)
        m1 = nm_sparsity_mask(x.T, 1, 2, axis=1).T
        np.testing.assert_array_equal(m0, m1)

    def test_partial_trailing_group(self):
        x = np.array([[3.0, 1.0, 2.0, 5.0, 9.0, 4.0]])  # length 6, m=4
        mask = nm_sparsity_mask(x, 2, 4)
        assert mask.shape == (1, 6)
        # first full group keeps {3, 5}; trailing pair keeps its largest
        np.testing.assert_array_equal(mask[0, :4], [True, False, False, True])
        assert mask[0, 4:].sum() >= 1

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            nm_sparsity_mask(np.ones(4), 0, 4)
        with pytest.raises(ValueError):
            nm_sparsity_mask(np.ones(4), 5, 4)

    def test_n_equals_m_keeps_everything(self):
        x = np.random.default_rng(2).normal(size=(4, 8))
        assert nm_sparsity_mask(x, 4, 4).all()


class TestApply:
    def test_density_after_pruning(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(16, 128))
        assert density(apply_nm_sparsity(x, 2, 4)) == pytest.approx(0.5)
        assert density(apply_nm_sparsity(x, 1, 4)) == pytest.approx(0.25)

    def test_survivors_unchanged(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 8))
        pruned = apply_nm_sparsity(x, 2, 4)
        kept = pruned != 0
        np.testing.assert_array_equal(pruned[kept], x[kept])

    def test_density_validation(self):
        with pytest.raises(ValueError):
            density(np.zeros((0,)))


class TestSparseQuantize:
    def test_preserves_sparsity_pattern(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(8, 64))
        q = sparse_quantize(x, BDRConfig.mx(m=4), 2, 4)
        mask = nm_sparsity_mask(x, 2, 4)
        np.testing.assert_array_equal(q[~mask], 0.0)

    def test_small_blocks_beat_large_after_pruning(self):
        """The intro's affinity claim, asserted directly."""
        from repro.fidelity.qsnr import qsnr

        rng = np.random.default_rng(6)
        x = rng.normal(size=(64, 1024))
        x[rng.random(size=x.shape) < 0.005] *= 32.0  # outliers
        pruned = apply_nm_sparsity(x, 2, 4)
        scores = {}
        for k1 in (16, 256):
            q = sparse_quantize(x, BDRConfig.bfp(m=4, k1=k1), 2, 4)
            scores[k1] = qsnr(pruned, q)
        assert scores[16] > scores[256]
