"""Unit tests for the QSNR methodology."""

import numpy as np
import pytest

from repro.fidelity.qsnr import QSNR_FLOOR, measure_qsnr, qsnr, qsnr_per_vector
from repro.formats.registry import get_format


class TestQsnr:
    def test_identical_is_ceiling(self):
        x = np.ones((4, 8))
        assert qsnr(x, x) == 300.0

    def test_zero_signal_is_floor(self):
        x = np.zeros((2, 4))
        assert qsnr(x, x + 1) == QSNR_FLOOR

    def test_known_value(self):
        x = np.array([[1.0, 1.0]])
        q = np.array([[1.1, 1.0]])
        expected = -10 * np.log10(0.01 / 2.0)
        assert qsnr(x, q) == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            qsnr(np.zeros(3), np.zeros(4))

    def test_per_vector(self):
        x = np.array([[1.0, 0.0], [2.0, 0.0]])
        q = np.array([[1.1, 0.0], [2.0, 0.0]])
        out = qsnr_per_vector(x, q)
        assert out.shape == (2,)
        assert out[1] == 300.0
        assert out[0] == pytest.approx(-10 * np.log10(0.01 / 1.0))


class TestMeasureQsnr:
    def test_reproducible(self):
        a = measure_qsnr(get_format("mx6"), n_vectors=200, seed=5)
        b = measure_qsnr(get_format("mx6"), n_vectors=200, seed=5)
        assert a == b

    def test_seed_changes_sample(self):
        a = measure_qsnr(get_format("mx6"), n_vectors=200, seed=5)
        b = measure_qsnr(get_format("mx6"), n_vectors=200, seed=6)
        assert a != b

    def test_mantissa_ordering(self):
        q4 = measure_qsnr(get_format("mx4"), n_vectors=300)
        q6 = measure_qsnr(get_format("mx6"), n_vectors=300)
        q9 = measure_qsnr(get_format("mx9"), n_vectors=300)
        assert q4 < q6 < q9

    def test_fp32_is_ceiling(self):
        assert measure_qsnr(get_format("fp32"), n_vectors=50) == 300.0

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            measure_qsnr(get_format("mx9"), distribution="cauchy", n_vectors=10)

    def test_paper_headline_deltas(self):
        """MX9 ~ E4M3 + 16 dB; MX9 ~ MSFP16 + 3.6 dB (both within 2 dB)."""
        mx9 = measure_qsnr(get_format("mx9"), n_vectors=2000)
        e4m3 = measure_qsnr(get_format("fp8_e4m3"), n_vectors=2000)
        msfp16 = measure_qsnr(get_format("msfp16"), n_vectors=2000)
        assert mx9 - e4m3 == pytest.approx(16.0, abs=2.0)
        assert mx9 - msfp16 == pytest.approx(3.6, abs=1.0)

    def test_mx6_between_fp8_variants(self):
        mx6 = measure_qsnr(get_format("mx6"), n_vectors=2000)
        e4m3 = measure_qsnr(get_format("fp8_e4m3"), n_vectors=2000)
        e5m2 = measure_qsnr(get_format("fp8_e5m2"), n_vectors=2000)
        assert e5m2 < mx6 < e4m3
