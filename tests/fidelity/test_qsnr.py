"""Unit tests for the QSNR methodology."""

import numpy as np
import pytest

from repro.fidelity.qsnr import QSNR_FLOOR, measure_qsnr, qsnr, qsnr_per_vector
from repro.formats.registry import get_format


class TestQsnr:
    def test_identical_is_ceiling(self):
        x = np.ones((4, 8))
        assert qsnr(x, x) == 300.0

    def test_zero_signal_is_floor(self):
        x = np.zeros((2, 4))
        assert qsnr(x, x + 1) == QSNR_FLOOR

    def test_known_value(self):
        x = np.array([[1.0, 1.0]])
        q = np.array([[1.1, 1.0]])
        expected = -10 * np.log10(0.01 / 2.0)
        assert qsnr(x, q) == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            qsnr(np.zeros(3), np.zeros(4))

    def test_per_vector(self):
        x = np.array([[1.0, 0.0], [2.0, 0.0]])
        q = np.array([[1.1, 0.0], [2.0, 0.0]])
        out = qsnr_per_vector(x, q)
        assert out.shape == (2,)
        assert out[1] == 300.0
        assert out[0] == pytest.approx(-10 * np.log10(0.01 / 1.0))


class TestMeasureQsnr:
    def test_reproducible(self):
        a = measure_qsnr(get_format("mx6"), n_vectors=200, seed=5)
        b = measure_qsnr(get_format("mx6"), n_vectors=200, seed=5)
        assert a == b

    def test_seed_changes_sample(self):
        a = measure_qsnr(get_format("mx6"), n_vectors=200, seed=5)
        b = measure_qsnr(get_format("mx6"), n_vectors=200, seed=6)
        assert a != b

    def test_mantissa_ordering(self):
        q4 = measure_qsnr(get_format("mx4"), n_vectors=300)
        q6 = measure_qsnr(get_format("mx6"), n_vectors=300)
        q9 = measure_qsnr(get_format("mx9"), n_vectors=300)
        assert q4 < q6 < q9

    def test_fp32_is_ceiling(self):
        assert measure_qsnr(get_format("fp32"), n_vectors=50) == 300.0

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            measure_qsnr(get_format("mx9"), distribution="cauchy", n_vectors=10)

    def test_paper_headline_deltas(self):
        """MX9 ~ E4M3 + 16 dB; MX9 ~ MSFP16 + 3.6 dB (both within 2 dB)."""
        mx9 = measure_qsnr(get_format("mx9"), n_vectors=2000)
        e4m3 = measure_qsnr(get_format("fp8_e4m3"), n_vectors=2000)
        msfp16 = measure_qsnr(get_format("msfp16"), n_vectors=2000)
        assert mx9 - e4m3 == pytest.approx(16.0, abs=2.0)
        assert mx9 - msfp16 == pytest.approx(3.6, abs=1.0)

    def test_mx6_between_fp8_variants(self):
        mx6 = measure_qsnr(get_format("mx6"), n_vectors=2000)
        e4m3 = measure_qsnr(get_format("fp8_e4m3"), n_vectors=2000)
        e5m2 = measure_qsnr(get_format("fp8_e5m2"), n_vectors=2000)
        assert e5m2 < mx6 < e4m3


class _ForceSequential:
    """Shim hiding a format's statelessness to force the chunked loop."""

    def __init__(self, fmt):
        self._fmt = fmt
        self.name = fmt.name

    is_stateless = False

    def quantize(self, *args, **kwargs):
        return self._fmt.quantize(*args, **kwargs)

    def reset_state(self):
        self._fmt.reset_state()

    @property
    def bits_per_element(self):
        return self._fmt.bits_per_element


class TestBatchedMeasureQsnr:
    """Stateless formats collapse to one batched quantize call; the result
    must be bit-identical to the sequential chunked loop."""

    @pytest.mark.parametrize("name", ["mx9", "mx6", "msfp16", "fp32"])
    def test_batched_equals_sequential(self, name):
        fmt = get_format(name)
        assert fmt.is_stateless
        batched = measure_qsnr(fmt, n_vectors=1000, seed=3)
        sequential = measure_qsnr(
            _ForceSequential(get_format(name)), n_vectors=1000, seed=3
        )
        assert batched == sequential

    def test_uneven_final_chunk(self):
        fmt = get_format("mx6")
        batched = measure_qsnr(fmt, n_vectors=601, chunk=256, seed=1)
        sequential = measure_qsnr(
            _ForceSequential(get_format("mx6")), n_vectors=601, chunk=256, seed=1
        )
        assert batched == sequential

    def test_zero_vectors_is_floor(self):
        """Regression: an empty ensemble must return the floor, not raise."""
        assert measure_qsnr(get_format("mx6"), n_vectors=0) == QSNR_FLOOR

    def test_oversized_ensemble_bypasses_cache(self):
        import importlib

        # the package re-exports the qsnr *function*, shadowing the module
        qsnr_mod = importlib.import_module("repro.fidelity.qsnr")

        before = qsnr_mod._cached_ensemble.cache_info().currsize
        n = qsnr_mod.MAX_CACHED_ENSEMBLE_BYTES // (8 * 16) + 1
        x, sizes = qsnr_mod._sample_ensemble("standard_normal", n, 16, 0, 1 << 20)
        assert x.shape == (n, 16)
        assert qsnr_mod._cached_ensemble.cache_info().currsize == before

    def test_streaming_path_matches_cached_path(self, monkeypatch):
        """Oversized requests stream chunk-by-chunk (bounded memory) and
        must produce the same value as the materialized path."""
        import importlib

        qsnr_mod = importlib.import_module("repro.fidelity.qsnr")
        stateless = measure_qsnr(get_format("mx6"), n_vectors=600, seed=4)
        stateful = measure_qsnr(get_format("int8"), n_vectors=600, seed=4)
        monkeypatch.setattr(qsnr_mod, "MAX_CACHED_ENSEMBLE_BYTES", 0)
        assert measure_qsnr(get_format("mx6"), n_vectors=600, seed=4) == stateless
        assert measure_qsnr(get_format("int8"), n_vectors=600, seed=4) == stateful

    def test_stateful_formats_stay_sequential(self):
        """Delayed scaling depends on chunk order; it must keep the loop
        (and therefore keep matching its own historical values)."""
        fmt = get_format("int8")
        assert not fmt.is_stateless
        a = measure_qsnr(fmt, n_vectors=600, seed=2)
        b = measure_qsnr(get_format("int8"), n_vectors=600, seed=2)
        assert a == b
