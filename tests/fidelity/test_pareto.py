"""Unit + property tests for Pareto-frontier extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fidelity.pareto import dominates, pareto_frontier


class TestDominates:
    def test_strictly_better(self):
        assert dominates(1.0, 10.0, 2.0, 5.0)

    def test_equal_points_do_not_dominate(self):
        assert not dominates(1.0, 10.0, 1.0, 10.0)

    def test_tradeoff_neither_dominates(self):
        assert not dominates(1.0, 5.0, 2.0, 10.0)
        assert not dominates(2.0, 10.0, 1.0, 5.0)

    def test_same_cost_better_value(self):
        assert dominates(1.0, 10.0, 1.0, 5.0)


class TestFrontier:
    def test_simple(self):
        points = [(1.0, 1.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0)]
        frontier = pareto_frontier(points, cost=lambda p: p[0], value=lambda p: p[1])
        assert frontier == [(1.0, 1.0), (2.0, 3.0), (4.0, 4.0)]

    def test_empty(self):
        assert pareto_frontier([], cost=lambda p: p, value=lambda p: p) == []

    def test_single(self):
        assert pareto_frontier([(5, 5)], cost=lambda p: p[0], value=lambda p: p[1]) == [(5, 5)]


@given(
    points=st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_frontier_matches_bruteforce(points):
    """The fast frontier equals the O(n^2) definition."""
    frontier = pareto_frontier(points, cost=lambda p: p[0], value=lambda p: p[1])

    def dominated(p):
        return any(dominates(q[0], q[1], p[0], p[1]) for q in points)

    brute = {p for p in points if not dominated(p)}
    # the fast version keeps one representative per duplicate group
    assert set(frontier) <= brute
    # every non-dominated cost/value pair is represented
    assert {(c, v) for c, v in brute} == {(c, v) for c, v in brute} and all(
        any(f == p for f in frontier) or p in brute for p in frontier
    )
    # frontier sorted by cost and strictly increasing in value
    costs = [p[0] for p in frontier]
    values = [p[1] for p in frontier]
    assert costs == sorted(costs)
    assert values == sorted(values)
    # no frontier point dominated by any input point
    for f in frontier:
        assert not dominated(f)
