"""Unit tests for the fidelity test distributions."""

import numpy as np
import pytest

from repro.fidelity.distributions import DISTRIBUTIONS, list_distributions, sample


class TestSampling:
    @pytest.mark.parametrize("name", list(DISTRIBUTIONS))
    def test_shape(self, name):
        rng = np.random.default_rng(0)
        x = sample(name, rng, 7, 33)
        assert x.shape == (7, 33)
        assert np.all(np.isfinite(x))

    def test_deterministic_given_rng_state(self):
        a = sample("variable_normal", np.random.default_rng(3), 4, 16)
        b = sample("variable_normal", np.random.default_rng(3), 4, 16)
        np.testing.assert_array_equal(a, b)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            sample("gamma", np.random.default_rng(0), 1, 1)

    def test_variable_normal_has_varying_scale(self):
        rng = np.random.default_rng(0)
        x = sample("variable_normal", rng, 500, 64)
        stds = x.std(axis=1)
        # per-vector sigmas follow |N(0,1)|: wide spread expected
        assert stds.max() / max(stds.min(), 1e-9) > 10

    def test_outlier_normal_has_outliers(self):
        rng = np.random.default_rng(0)
        x = sample("outlier_normal", rng, 100, 256)
        assert np.abs(x).max() > 20.0

    def test_lognormal_is_signed(self):
        rng = np.random.default_rng(0)
        x = sample("lognormal", rng, 10, 256)
        assert (x > 0).any() and (x < 0).any()

    def test_list_distributions(self):
        names = list_distributions()
        assert names == sorted(names)
        assert "variable_normal" in names
