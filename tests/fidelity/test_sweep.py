"""Unit tests for the design-space sweep."""

import pytest

from repro.core.bdr import BDRConfig
from repro.fidelity.sweep import (
    SweepPoint,
    bdr_design_space,
    named_design_points,
    run_sweep,
    sweep_frontier,
)


class TestDesignSpace:
    def test_default_grid_is_substantial(self):
        grid = bdr_design_space()
        assert len(grid) > 200

    def test_all_configs_valid(self):
        for config in bdr_design_space():
            assert isinstance(config, BDRConfig)
            assert config.s_type == "pow2"

    def test_includes_single_level_points(self):
        grid = bdr_design_space()
        assert any(c.d2 == 0 for c in grid)
        assert any(c.d2 > 0 for c in grid)

    def test_paper_scale_reachable(self):
        grid = bdr_design_space(
            mantissa_bits=(1, 2, 3, 4, 5, 6, 7, 8),
            k1_values=(8, 16, 32, 64, 128, 256),
            k2_values=(1, 2, 4, 8, 16, 32, 64),
            d2_values=(0, 1, 2, 3),
        )
        assert len(grid) >= 800  # "an exhaustive sweep ... 800+ configurations"

    def test_mx_formats_in_grid(self):
        grid = bdr_design_space()
        for m in (2, 4, 7):
            assert BDRConfig.mx(m=m) in grid


class TestNamedPoints:
    def test_all_constructible(self):
        points = named_design_points()
        assert len(points) >= 18
        names = [p.name for p in points]
        assert "MX9" in names and "VSQ4(d2=10)" in names


class TestRunSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        configs = [BDRConfig.mx(m=2), BDRConfig.mx(m=7), BDRConfig.bfp(m=4, k1=16)]
        return run_sweep(configs=configs, include_named=False, n_vectors=200)

    def test_point_fields(self, small_sweep):
        for p in small_sweep:
            assert isinstance(p, SweepPoint)
            assert p.cost > 0
            assert p.qsnr_db > 0
            assert p.theorem_bound_db is not None
            assert p.qsnr_db >= p.theorem_bound_db

    def test_frontier_is_subset(self, small_sweep):
        frontier = sweep_frontier(small_sweep)
        assert set(p.label for p in frontier) <= set(p.label for p in small_sweep)
        # no frontier point dominates another
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not a.dominates(b)

    def test_dominates(self):
        a = SweepPoint("a", "mx", 4, 20.0, 0.2, 0.5, 0.1)
        b = SweepPoint("b", "mx", 6, 15.0, 0.4, 0.7, 0.3)
        assert a.dominates(b)
        assert not b.dominates(a)


class TestParallelSweep:
    CONFIGS = [BDRConfig.mx(m=2), BDRConfig.mx(m=7), BDRConfig.bfp(m=4, k1=16)]

    def test_n_jobs_matches_serial_bit_exactly(self):
        serial = run_sweep(configs=self.CONFIGS, include_named=False,
                           n_vectors=100)
        parallel = run_sweep(configs=self.CONFIGS, include_named=False,
                             n_vectors=100, n_jobs=2)
        assert serial == parallel  # SweepPoint is a frozen dataclass: exact

    def test_n_jobs_with_named_formats(self):
        serial = run_sweep(configs=[], include_named=True, n_vectors=50)
        parallel = run_sweep(configs=[], include_named=True, n_vectors=50,
                             n_jobs=2)
        assert serial == parallel

    def test_n_jobs_one_stays_serial(self):
        a = run_sweep(configs=self.CONFIGS[:1], include_named=False,
                      n_vectors=50, n_jobs=1)
        b = run_sweep(configs=self.CONFIGS[:1], include_named=False,
                      n_vectors=50)
        assert a == b
