"""Unit tests for the design-space sweep."""

import pytest

from repro.core.bdr import BDRConfig
from repro.fidelity.sweep import (
    SweepPoint,
    bdr_design_space,
    named_design_points,
    run_sweep,
    sweep_frontier,
)
from repro.spec import FirstLastHighPolicy, PolicyRule, RulePolicy, UniformPolicy


class TestDesignSpace:
    def test_default_grid_is_substantial(self):
        grid = bdr_design_space()
        assert len(grid) > 200

    def test_all_configs_valid(self):
        for config in bdr_design_space():
            assert isinstance(config, BDRConfig)
            assert config.s_type == "pow2"

    def test_includes_single_level_points(self):
        grid = bdr_design_space()
        assert any(c.d2 == 0 for c in grid)
        assert any(c.d2 > 0 for c in grid)

    def test_paper_scale_reachable(self):
        grid = bdr_design_space(
            mantissa_bits=(1, 2, 3, 4, 5, 6, 7, 8),
            k1_values=(8, 16, 32, 64, 128, 256),
            k2_values=(1, 2, 4, 8, 16, 32, 64),
            d2_values=(0, 1, 2, 3),
        )
        assert len(grid) >= 800  # "an exhaustive sweep ... 800+ configurations"

    def test_mx_formats_in_grid(self):
        grid = bdr_design_space()
        for m in (2, 4, 7):
            assert BDRConfig.mx(m=m) in grid


class TestNamedPoints:
    def test_all_constructible(self):
        points = named_design_points()
        assert len(points) >= 18
        names = [p.name for p in points]
        assert "MX9" in names and "VSQ4(d2=10)" in names


class TestRunSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        configs = [BDRConfig.mx(m=2), BDRConfig.mx(m=7), BDRConfig.bfp(m=4, k1=16)]
        return run_sweep(configs=configs, include_named=False, n_vectors=200)

    def test_point_fields(self, small_sweep):
        for p in small_sweep:
            assert isinstance(p, SweepPoint)
            assert p.cost > 0
            assert p.qsnr_db > 0
            assert p.theorem_bound_db is not None
            assert p.qsnr_db >= p.theorem_bound_db

    def test_frontier_is_subset(self, small_sweep):
        frontier = sweep_frontier(small_sweep)
        assert set(p.label for p in frontier) <= set(p.label for p in small_sweep)
        # no frontier point dominates another
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not a.dominates(b)

    def test_dominates(self):
        a = SweepPoint("a", "mx", 4, 20.0, 0.2, 0.5, 0.1)
        b = SweepPoint("b", "mx", 6, 15.0, 0.4, 0.7, 0.3)
        assert a.dominates(b)
        assert not b.dominates(a)


class TestParallelSweep:
    CONFIGS = [BDRConfig.mx(m=2), BDRConfig.mx(m=7), BDRConfig.bfp(m=4, k1=16)]

    def test_n_jobs_matches_serial_bit_exactly(self):
        serial = run_sweep(configs=self.CONFIGS, include_named=False,
                           n_vectors=100)
        parallel = run_sweep(configs=self.CONFIGS, include_named=False,
                             n_vectors=100, n_jobs=2)
        assert serial == parallel  # SweepPoint is a frozen dataclass: exact

    def test_n_jobs_with_named_formats(self):
        serial = run_sweep(configs=[], include_named=True, n_vectors=50)
        parallel = run_sweep(configs=[], include_named=True, n_vectors=50,
                             n_jobs=2)
        assert serial == parallel

    def test_n_jobs_one_stays_serial(self):
        a = run_sweep(configs=self.CONFIGS[:1], include_named=False,
                      n_vectors=50, n_jobs=1)
        b = run_sweep(configs=self.CONFIGS[:1], include_named=False,
                      n_vectors=50)
        assert a == b


class TestSpecFormatPoints:
    """Design points given as spec-language spellings."""

    SPECS = ["mx6", "bdr(m=3,k1=32,d1=8)", "vsq(bits=4,d2=8)", "int8?scaling=jit"]

    def test_spec_points_match_named_points(self):
        by_spec = run_sweep(configs=[], include_named=False,
                            formats=["mx6"], n_vectors=100)
        named = run_sweep(configs=[], include_named=True, n_vectors=100)
        (mx6_named,) = [p for p in named if p.label == "MX6"]
        assert by_spec[0] == mx6_named

    def test_parallel_bit_identical(self):
        serial = run_sweep(configs=[], include_named=False,
                           formats=self.SPECS, n_vectors=100)
        parallel = run_sweep(configs=[], include_named=False,
                             formats=self.SPECS, n_vectors=100, n_jobs=2)
        assert serial == parallel

    def test_stateful_spec_points_parallelize(self):
        # delayed-scaling formats carry history and were previously
        # unpicklable as closures; as spec strings they fan out fine
        serial = run_sweep(configs=[], include_named=False,
                           formats=["int8", "vsq4"], n_vectors=100)
        parallel = run_sweep(configs=[], include_named=False,
                             formats=["int8", "vsq4"], n_vectors=100, n_jobs=2)
        assert serial == parallel


class TestPolicyPoints:
    """Whole-model fidelity points driven by declarative policies."""

    POLICIES = [
        UniformPolicy(quant="mx6"),
        FirstLastHighPolicy(quant="mx4", high="mx9"),
        RulePolicy(
            rules=(PolicyRule(quant="mx4", name_glob="layers.0*"),),
            default="fp8_e4m3",
        ),
    ]

    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(configs=[], include_named=False,
                         policies=self.POLICIES, n_vectors=100)

    def test_fields(self, serial):
        assert [p.family for p in serial] == ["policy"] * 3
        for p in serial:
            assert 0 < p.qsnr_db < 300
            assert p.cost > 0
            assert p.theorem_bound_db is None
        # the mixed policy averages storage between MX4 and MX9 layers
        assert 4.0 < serial[1].bits_per_element < 9.0

    def test_json_round_trip_drives_identical_points(self, serial):
        import json

        dicts = [json.loads(p.to_json()) for p in self.POLICIES]
        rebuilt = run_sweep(configs=[], include_named=False,
                            policies=dicts, n_vectors=100)
        assert rebuilt == serial

    def test_parallel_bit_identical_to_serial(self, serial):
        """The satellite acceptance: run_sweep(n_jobs=2) with non-uniform
        PolicySpecs is bit-identical to the serial path — impossible with
        closure policies, which do not pickle."""
        parallel = run_sweep(configs=[], include_named=False,
                             policies=self.POLICIES, n_vectors=100, n_jobs=2)
        assert parallel == serial

    def test_closure_policies_really_do_not_pickle(self):
        import pickle

        from repro.flow.policy import uniform_policy

        with pytest.raises(Exception):
            pickle.dumps(uniform_policy(None))

    def test_uniform_fp32_policy_is_lossless(self):
        points = run_sweep(configs=[], include_named=False,
                           policies=[UniformPolicy()], n_vectors=50)
        assert points[0].qsnr_db == 300.0  # QSNR_CEILING: zero error
        assert points[0].bits_per_element == 32.0

    def test_unknown_probe_model(self):
        with pytest.raises(ValueError, match="unknown probe model"):
            run_sweep(configs=[], include_named=False,
                      policies=[UniformPolicy()], model="nope", n_vectors=10)
