"""Unit tests for corpus BLEU."""

import pytest

from repro.metrics.bleu import bleu_score


class TestBleu:
    def test_identical_is_100(self):
        refs = [[1, 2, 3, 4, 5], [6, 7, 8, 9]]
        assert bleu_score(refs, refs) == pytest.approx(100.0)

    def test_disjoint_is_near_zero(self):
        refs = [[1, 2, 3, 4, 5]]
        hyps = [[6, 7, 8, 9, 10]]
        assert bleu_score(refs, hyps) < 1e-3

    def test_partial_overlap_between(self):
        refs = [[1, 2, 3, 4, 5, 6]]
        hyps = [[1, 2, 3, 9, 9, 9]]
        score = bleu_score(refs, hyps)
        assert 0.0 < score < 100.0

    def test_brevity_penalty(self):
        refs = [[1, 2, 3, 4, 5, 6, 7, 8]]
        full = bleu_score(refs, [[1, 2, 3, 4, 5, 6, 7, 8]])
        short = bleu_score(refs, [[1, 2, 3, 4]])
        assert short < full

    def test_no_length_bonus_for_padding(self):
        refs = [[1, 2, 3, 4]]
        exact = bleu_score(refs, [[1, 2, 3, 4]])
        padded = bleu_score(refs, [[1, 2, 3, 4, 9, 9]])
        assert padded < exact

    def test_clipped_counts(self):
        # repeating a matching unigram must not inflate precision
        refs = [[1, 2, 3, 4]]
        spam = bleu_score(refs, [[1, 1, 1, 1]])
        assert spam < 30.0

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            bleu_score([[1]], [[1], [2]])

    def test_empty_corpus(self):
        with pytest.raises(ValueError, match="empty"):
            bleu_score([], [])

    def test_string_tokens(self):
        refs = [["the", "cat", "sat", "down"]]
        assert bleu_score(refs, refs) == pytest.approx(100.0)
