"""Unit tests for AUC and normalized entropy."""

import numpy as np
import pytest

from repro.metrics.auc import auc, normalized_entropy


class TestAuc:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(2, size=20_000)
        scores = rng.random(20_000)
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.02)

    def test_ties_averaged(self):
        labels = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert auc(labels, scores) == 0.5

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(2, size=200)
        scores = rng.random(200)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        brute = np.mean([(p > n) + 0.5 * (p == n) for p in pos for n in neg])
        assert auc(labels, scores) == pytest.approx(brute)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auc(np.ones(5), np.random.default_rng(0).random(5))


class TestNormalizedEntropy:
    def test_base_rate_prediction_is_one(self):
        rng = np.random.default_rng(2)
        labels = (rng.random(50_000) < 0.3).astype(float)
        probs = np.full(50_000, labels.mean())
        assert normalized_entropy(labels, probs) == pytest.approx(1.0, abs=1e-9)

    def test_good_model_below_one(self):
        rng = np.random.default_rng(3)
        true_p = rng.uniform(0.05, 0.95, size=20_000)
        labels = (rng.random(20_000) < true_p).astype(float)
        assert normalized_entropy(labels, true_p) < 1.0

    def test_perfect_prediction_near_zero(self):
        labels = np.array([0.0, 1.0, 1.0, 0.0])
        probs = np.array([1e-9, 1 - 1e-9, 1 - 1e-9, 1e-9])
        assert normalized_entropy(labels, probs) == pytest.approx(0.0, abs=1e-6)

    def test_clipping_guards_extremes(self):
        labels = np.array([1.0])
        probs = np.array([0.0])  # would be -inf without clipping
        assert np.isfinite(normalized_entropy(labels, probs))
