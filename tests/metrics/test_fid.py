"""Unit tests for FID / inception-score metrics."""

import numpy as np
import pytest

from repro.metrics.fid import frechet_distance, inception_score


class TestFrechet:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5000, 2))
        y = rng.normal(size=(5000, 2))
        assert frechet_distance(x, y) < 0.02

    def test_mean_shift(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5000, 2))
        y = rng.normal(size=(5000, 2)) + np.array([3.0, 0.0])
        assert frechet_distance(x, y) == pytest.approx(9.0, abs=0.3)

    def test_known_gaussian_formula(self):
        """For isotropic Gaussians: d = |mu1-mu2|^2 + (s1-s2)^2 * dim."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50_000, 2)) * 1.0
        y = rng.normal(size=(50_000, 2)) * 2.0
        assert frechet_distance(x, y) == pytest.approx(2.0, abs=0.15)

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(500, 3))
        y = rng.normal(size=(500, 3)) * 1.5 + 1.0
        assert frechet_distance(x, y) == pytest.approx(frechet_distance(y, x), rel=1e-6)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            frechet_distance(np.zeros((5, 2)), np.zeros((5, 3)))

    def test_nonnegative(self):
        rng = np.random.default_rng(4)
        for _ in range(5):
            x = rng.normal(size=(50, 4))
            y = rng.normal(size=(50, 4))
            assert frechet_distance(x, y) >= 0.0


class TestInceptionScore:
    def test_confident_diverse_is_high(self):
        # each sample confidently predicts a different class
        p = np.eye(8).repeat(10, axis=0)
        assert inception_score(p) == pytest.approx(8.0)

    def test_uniform_is_one(self):
        p = np.full((100, 8), 1 / 8)
        assert inception_score(p) == pytest.approx(1.0)

    def test_mode_collapse_is_one(self):
        # confident but all the same class
        p = np.zeros((100, 8))
        p[:, 3] = 1.0
        assert inception_score(p) == pytest.approx(1.0)

    def test_bounded_by_num_classes(self):
        rng = np.random.default_rng(5)
        p = rng.dirichlet(np.ones(6), size=200)
        score = inception_score(p)
        assert 1.0 <= score <= 6.0
