"""Unit tests for classification and span metrics."""

import numpy as np
import pytest

from repro.metrics.classification import exact_match, squad_scores, token_f1, top1_accuracy
from repro.metrics.lm import pearson_correlation, perplexity


class TestTop1:
    def test_all_correct(self):
        assert top1_accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 100.0

    def test_half(self):
        assert top1_accuracy(np.array([1, 2]), np.array([1, 9])) == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            top1_accuracy(np.array([]), np.array([]))


class TestSpanMetrics:
    def test_exact_match(self):
        assert exact_match([1, 2], [1, 2]) == 1.0
        assert exact_match([1, 2], [2, 1]) == 0.0

    def test_f1_overlap(self):
        # gold {1,2}, predicted {2,3}: overlap 1, p=r=0.5 -> f1 0.5
        assert token_f1([1, 2], [2, 3]) == pytest.approx(0.5)

    def test_f1_edges(self):
        assert token_f1([], []) == 1.0
        assert token_f1([1], []) == 0.0
        assert token_f1([1], [2]) == 0.0

    def test_squad_scores(self):
        gold = [[1, 2], [3]]
        pred = [[1, 2], [4]]
        em, f1 = squad_scores(gold, pred)
        assert em == 50.0
        assert f1 == 50.0

    def test_squad_validation(self):
        with pytest.raises(ValueError):
            squad_scores([], [])


class TestLmMetrics:
    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert perplexity(np.log(32)) == pytest.approx(32.0)

    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_independent(self):
        rng = np.random.default_rng(0)
        r = pearson_correlation(rng.normal(size=5000), rng.normal(size=5000))
        assert abs(r) < 0.05

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            pearson_correlation(np.arange(3.0), np.arange(4.0))
