"""Unit tests for WER / edit distance."""

import pytest

from repro.metrics.wer import collapse_repeats, edit_distance, wer


class TestEditDistance:
    def test_identical(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0

    def test_substitution(self):
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1

    def test_insertion_deletion(self):
        assert edit_distance([1, 2, 3], [1, 2]) == 1
        assert edit_distance([1, 2], [1, 2, 3]) == 1

    def test_empty(self):
        assert edit_distance([], [1, 2]) == 2
        assert edit_distance([1, 2], []) == 2
        assert edit_distance([], []) == 0

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3


class TestCollapse:
    def test_merges_adjacent(self):
        assert collapse_repeats([1, 1, 2, 2, 2, 1]) == [1, 2, 1]

    def test_empty(self):
        assert collapse_repeats([]) == []


class TestWer:
    def test_perfect(self):
        assert wer([[1, 2, 3]], [[1, 2, 3]]) == 0.0

    def test_half_wrong(self):
        assert wer([[1, 2]], [[1, 9]]) == pytest.approx(50.0)

    def test_can_exceed_100(self):
        assert wer([[1]], [[2, 3, 4]]) == pytest.approx(300.0)

    def test_corpus_weighting(self):
        # 1 error over 6 reference tokens
        assert wer([[1, 2, 3], [4, 5, 6]], [[1, 2, 3], [4, 5, 9]]) == pytest.approx(100 / 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            wer([[1]], [])
        with pytest.raises(ValueError):
            wer([[]], [[]])
