"""Unit tests for BF16/FP16 element-wise emulation."""

import numpy as np
import pytest

from repro.nn.precision import (
    VectorPrecision,
    apply_vector_precision,
    round_bf16,
    round_fp16,
)
from repro.nn.tensor import Tensor


class TestRoundBF16:
    def test_representable_values_unchanged(self):
        # BF16 = FP32 with 7 mantissa bits: these are exact
        x = np.array([1.0, 1.5, 0.25, -3.0, 2.0**-100])
        np.testing.assert_array_equal(round_bf16(x), x)

    def test_rounds_off_low_bits(self):
        x = np.array([1.0 + 2.0**-10])
        assert round_bf16(x)[0] == 1.0

    def test_relative_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=10_000) * 10.0 ** rng.integers(-10, 10, size=10_000)
        rel = np.abs(round_bf16(x) - x) / np.abs(x)
        assert rel.max() <= 2.0**-8  # half ULP of 7 explicit bits

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7 -> ties to even
        assert round_bf16(np.array([1.0 + 2.0**-8]))[0] == 1.0
        # 1 + 3*2^-8 is halfway to odd -> rounds up to even code
        assert round_bf16(np.array([1.0 + 3 * 2.0**-8]))[0] == 1.0 + 2.0**-6


class TestRoundFP16:
    def test_representable(self):
        x = np.array([1.0, 0.5, 65504.0])
        np.testing.assert_array_equal(round_fp16(x), x)

    def test_precision(self):
        assert round_fp16(np.array([1.0 + 2.0**-13]))[0] == 1.0


class TestApplyVectorPrecision:
    def test_fp32_is_identity(self):
        t = Tensor(np.array([1.23456789]))
        assert apply_vector_precision(t, VectorPrecision.FP32) is t

    def test_bf16_rounds_values(self):
        t = Tensor(np.array([1.0 + 2.0**-12]))
        out = apply_vector_precision(t, VectorPrecision.BF16)
        assert out.data[0] == 1.0

    def test_straight_through_gradient(self):
        t = Tensor(np.array([1.0 + 2.0**-12]), requires_grad=True)
        out = apply_vector_precision(t, VectorPrecision.BF16)
        (out * 3.0).sum().backward()
        assert t.grad[0] == 3.0

    def test_unknown_precision(self):
        with pytest.raises(ValueError):
            apply_vector_precision(Tensor(np.ones(1)), "fp12")
