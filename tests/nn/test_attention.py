"""Unit tests for multi-head attention and transformer blocks."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, causal_mask
from repro.nn.quantized import QuantSpec
from repro.nn.tensor import Tensor
from repro.nn.transformer import DecoderBlock, TransformerBlock, sinusoidal_positions


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCausalMask:
    def test_shape_and_pattern(self):
        mask = causal_mask(3)
        expected = [[False, True, True], [False, False, True], [False, False, False]]
        np.testing.assert_array_equal(mask, expected)


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_dim_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            MultiHeadAttention(10, 3)

    def test_causal_mask_blocks_future(self, rng):
        """Perturbing a future token must not change earlier outputs."""
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        base = attn(Tensor(x), mask=causal_mask(4)).data
        perturbed = x.copy()
        perturbed[0, 3] += 5.0
        out = attn(Tensor(perturbed), mask=causal_mask(4)).data
        np.testing.assert_allclose(out[0, :3], base[0, :3], atol=1e-12)
        assert not np.allclose(out[0, 3], base[0, 3])

    def test_cross_attention(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8)))
        memory = Tensor(rng.normal(size=(2, 7, 8)))
        out = attn(x, context=memory)
        assert out.shape == (2, 3, 8)

    def test_set_quant_propagates(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        spec = QuantSpec.uniform("mx9")
        attn.set_quant(spec)
        assert attn.q_proj.quant is spec
        assert attn.out_proj.quant is spec
        attn.set_quant(None)
        assert attn.quant is None and attn.k_proj.quant is None

    def test_quantized_attention_differs(self, rng):
        x = Tensor(rng.normal(size=(1, 6, 16)))
        a = MultiHeadAttention(16, 4, rng=np.random.default_rng(3))
        b = MultiHeadAttention(16, 4, rng=np.random.default_rng(3))
        b.set_quant(QuantSpec.uniform("mx4"))
        assert not np.allclose(a(x).data, b(x).data)

    def test_gradients_flow(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        for p in attn.parameters():
            assert p.grad is not None


class TestTransformerBlocks:
    def test_encoder_block(self, rng):
        block = TransformerBlock(16, 4, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_decoder_block(self, rng):
        block = DecoderBlock(16, 4, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 16)))
        memory = Tensor(rng.normal(size=(2, 9, 16)))
        out = block(x, memory, self_mask=causal_mask(4))
        assert out.shape == (2, 4, 16)

    def test_residual_identity_at_init_scale(self, rng):
        """Output stays within a sane multiple of the input norm."""
        block = TransformerBlock(16, 4, rng=rng)
        x = rng.normal(size=(1, 4, 16))
        out = block(Tensor(x)).data
        assert np.linalg.norm(out) < 10 * np.linalg.norm(x)


class TestPositions:
    def test_sinusoidal_shape_and_range(self):
        pos = sinusoidal_positions(10, 16)
        assert pos.shape == (10, 16)
        assert np.abs(pos).max() <= 1.0

    def test_rows_distinct(self):
        pos = sinusoidal_positions(32, 16)
        assert len({tuple(np.round(r, 6)) for r in pos}) == 32
