"""Unit tests for functional ops."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 7)))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=-1), 1.0)

    def test_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b)

    def test_log_softmax_consistent(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_overflow_safe(self):
        x = Tensor(np.array([[1000.0, 1001.0]]))
        s = F.softmax(x).data
        assert np.all(np.isfinite(s))


class TestGelu:
    def test_known_values(self):
        x = Tensor(np.array([0.0, 10.0, -10.0]))
        out = F.gelu(x).data
        assert out[0] == 0.0
        assert out[1] == pytest.approx(10.0, abs=1e-3)
        assert out[2] == pytest.approx(0.0, abs=1e-3)

    def test_silu(self):
        out = F.silu(Tensor(np.array([0.0]))).data
        assert out[0] == 0.0


class TestLayerNorm:
    def test_normalizes(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(4, 16)) * 5 + 3)
        out = F.layer_norm(x, Tensor(np.ones(16)), Tensor(np.zeros(16)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_affine(self):
        x = Tensor(np.random.default_rng(3).normal(size=(2, 8)))
        out = F.layer_norm(x, Tensor(np.full(8, 2.0)), Tensor(np.full(8, 1.0)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 1.0, atol=1e-9)


class TestEmbedding:
    def test_gather(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = F.embedding(table, np.array([[0, 2], [1, 1]]))
        np.testing.assert_array_equal(out.data[0, 1], [6.0, 7.0, 8.0])

    def test_scatter_add_backward(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        out = F.embedding(table, np.array([1, 1, 3]))
        out.sum().backward()
        np.testing.assert_array_equal(table.grad[:, 0], [0.0, 2.0, 0.0, 1.0])


class TestDropout:
    def test_identity_in_eval(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(8, 8)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_scaling_preserves_mean(self):
        rng = np.random.default_rng(5)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.25, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)


class TestMaskedFill:
    def test_values_and_grads(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        out = F.masked_fill(x, mask, -5.0)
        assert out.data[0, 0] == -5.0
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [[0.0, 1.0], [1.0, 1.0]])


class TestCrossEntropy:
    def test_matches_manual(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(5, 4))
        targets = rng.integers(4, size=5)
        loss = F.cross_entropy(Tensor(logits), targets)
        logp = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(5), targets].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_ignore_index(self):
        logits = np.zeros((3, 4))
        targets = np.array([0, -1, 2])
        loss = F.cross_entropy(Tensor(logits), targets, ignore_index=-1)
        assert float(loss.data) == pytest.approx(np.log(4))

    def test_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-9)

    def test_3d_logits(self):
        rng = np.random.default_rng(7)
        logits = Tensor(rng.normal(size=(2, 3, 5)), requires_grad=True)
        targets = rng.integers(5, size=(2, 3))
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        assert logits.grad.shape == (2, 3, 5)


class TestOneHot:
    def test_shape_and_values(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])
