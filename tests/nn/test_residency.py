"""Quantized activation residency: payload sharing, flags, observability."""

import numpy as np
import pytest

from repro.core.quantize import quantize_call_count, reset_quantize_calls
from repro.formats.registry import get_format
from repro.kernels.numpy_backend import legacy_schedule
from repro.nn.layers import Linear
from repro.nn.quantized import QuantSpec, quantized_matmul
from repro.nn.residency import (
    FusedWeightCache,
    QuantizedActivation,
    acquire,
    configure_fusion,
    fusion_configured,
    fusion_disabled,
    fusion_enabled,
    supports_epilogue,
    supports_fused_projection,
)
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def spec():
    return QuantSpec.inference("mx6", activation="mx6")


@pytest.fixture(autouse=True)
def _stages_on():
    """Pin every fusion stage on so the suite is REPRO_FUSION-independent."""
    with fusion_configured(residency=True, epilogue=True, projections=True):
        yield


class TestAcquire:
    def test_payload_matches_direct_quantization(self, rng, spec):
        t = Tensor(rng.normal(size=(4, 32)))
        payload = acquire(t, spec.activation, -1)
        np.testing.assert_array_equal(
            payload.data, spec.activation.quantize(t.data, axis=-1)
        )
        assert isinstance(payload, QuantizedActivation)
        assert payload.fresh and payload.axis == -1

    def test_shared_across_consumers(self, rng, spec):
        t = Tensor(rng.normal(size=(4, 32)))
        with no_grad():
            first = acquire(t, spec.activation, -1)
            second = acquire(t, spec.activation, -1)
        assert first.data is second.data  # one resident payload

    def test_stale_after_rebind(self, rng, spec):
        t = Tensor(rng.normal(size=(4, 32)))
        with no_grad():
            payload = acquire(t, spec.activation, -1)
            t.data = rng.normal(size=(4, 32))
            assert not payload.fresh
            fresh = acquire(t, spec.activation, -1)
        assert fresh.fresh
        assert fresh.data is not payload.data

    def test_none_format_passthrough(self, rng):
        t = Tensor(rng.normal(size=(3, 8)))
        payload = acquire(t, None, -1)
        assert payload.data is t.data


class TestResidencyInMatmul:
    def test_sibling_consumers_quantize_once(self, rng, spec):
        """Three projections of one activation: one engine entry."""
        x = Tensor(rng.normal(size=(4, 32)))
        ws = [Tensor(rng.normal(size=(32, 16)), requires_grad=True) for _ in range(3)]
        with no_grad():
            for w in ws:
                quantized_matmul(x, w, spec)  # warm the weight memos
            before = quantize_call_count()
            for w in ws:
                quantized_matmul(x, w, spec)
            assert quantize_call_count() - before == 0  # all resident

    def test_residency_off_requantizes_per_consumer(self, rng, spec):
        x = Tensor(rng.normal(size=(4, 32)))
        ws = [Tensor(rng.normal(size=(32, 16)), requires_grad=True) for _ in range(3)]
        with no_grad(), fusion_disabled():
            for w in ws:
                quantized_matmul(x, w, spec)
            before = quantize_call_count()
            for w in ws:
                quantized_matmul(x, w, spec)
            assert quantize_call_count() - before == 3  # one per consumer

    def test_training_path_unchanged(self, rng, spec):
        """Gradient-mode activations are never cached (non-leaf inputs)."""
        x = Tensor(rng.normal(size=(4, 32)), requires_grad=True)
        y = x * 2.0  # non-leaf
        w = Tensor(rng.normal(size=(32, 16)), requires_grad=True)
        quantized_matmul(y, w, spec)
        before = quantize_call_count()
        quantized_matmul(y, w, spec)
        assert quantize_call_count() - before >= 1


class TestFusionSwitchboard:
    def test_stages_on_inside_fixture(self):
        # the autouse fixture pins stages on; the process default itself
        # follows REPRO_FUSION (covered by the env-smoke in scripts/ci.sh)
        assert fusion_enabled("residency")
        assert fusion_enabled("epilogue")
        assert fusion_enabled("projections")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown fusion stage"):
            fusion_enabled("warp")

    def test_configure_restores(self):
        previous = configure_fusion(epilogue=False)
        try:
            assert not fusion_enabled("epilogue")
            assert fusion_enabled("projections")
        finally:
            configure_fusion(**previous)
        assert fusion_enabled("epilogue")

    def test_context_managers_nest(self):
        with fusion_disabled():
            assert not fusion_enabled("residency")
            with fusion_configured(epilogue=True):
                assert fusion_enabled("epilogue")
                assert not fusion_enabled("projections")
            assert not fusion_enabled("epilogue")
        assert fusion_enabled("residency")

    def test_kernel_schedule_follows_epilogue_stage(self):
        assert not legacy_schedule()
        with fusion_disabled():
            assert legacy_schedule()
        assert not legacy_schedule()


class TestEligibility:
    def test_epilogue_needs_spec_and_inference(self, spec):
        assert not supports_epilogue(None)
        assert not supports_epilogue(spec)  # grad enabled
        with no_grad():
            assert supports_epilogue(spec)
            with fusion_disabled():
                assert not supports_epilogue(spec)

    def test_fused_projection_gate(self):
        with no_grad():
            assert supports_fused_projection(QuantSpec.inference("mx6", activation="mx6"))
            assert supports_fused_projection(QuantSpec.inference("msfp12", activation="msfp12"))
            # weight-only cast: raw fp32 activations make dots inexact
            assert not supports_fused_projection(QuantSpec.inference("mx6"))
            # software-scaled formats are not order-independent
            assert not supports_fused_projection(
                QuantSpec.inference("int8", activation="int8")
            )
            stochastic = QuantSpec(
                activation=get_format("mx6"), weight=get_format("mx6"),
                rounding="stochastic", rng=np.random.default_rng(0),
            )
            assert not supports_fused_projection(stochastic)
            assert not supports_fused_projection(None)


class TestFusedWeightCache:
    def _layers(self, rng, spec, n=3):
        layers = [Linear(16, 8, rng=rng, quant=spec) for _ in range(n)]
        return layers

    def test_payload_concatenates_memoized_weights(self, rng, spec):
        layers = self._layers(rng, spec)
        cache = FusedWeightCache()
        weight, bias = cache.payload(layers, spec)
        expected = np.concatenate(
            [spec.weight.quantize(l.weight.data, axis=0) for l in layers], axis=1
        )
        np.testing.assert_array_equal(weight, expected)
        np.testing.assert_array_equal(
            bias, np.concatenate([l.bias.data for l in layers])
        )

    def test_payload_cached_until_weights_change(self, rng, spec):
        layers = self._layers(rng, spec)
        cache = FusedWeightCache()
        first, _ = cache.payload(layers, spec)
        second, _ = cache.payload(layers, spec)
        assert first is second
        layers[1].weight.data = rng.normal(size=(16, 8))
        third, _ = cache.payload(layers, spec)
        assert third is not first

    def test_bias_none_when_any_missing(self, rng, spec):
        layers = self._layers(rng, spec)
        layers[2].bias = None
        cache = FusedWeightCache()
        _, bias = cache.payload(layers, spec)
        assert bias is None

    def test_invalidate(self, rng, spec):
        layers = self._layers(rng, spec)
        cache = FusedWeightCache()
        first, _ = cache.payload(layers, spec)
        cache.invalidate()
        second, _ = cache.payload(layers, spec)
        assert second is not first
        np.testing.assert_array_equal(first, second)


class TestCounters:
    def test_counter_counts_engine_entries(self, rng):
        fmt = get_format("mx6")
        x = rng.normal(size=(4, 32))
        before = quantize_call_count()
        fmt.quantize(x, axis=-1)
        fmt.quantize(x, axis=-1)
        assert quantize_call_count() - before == 2

    def test_reset_returns_previous(self, rng):
        fmt = get_format("mx6")
        fmt.quantize(rng.normal(size=(2, 16)), axis=-1)
        previous = reset_quantize_calls()
        assert previous >= 1
        assert quantize_call_count() == 0
