"""Unit tests for the module system and basic layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.quantized import QuantSpec
from repro.nn.tensor import Tensor


class TestModuleTraversal:
    def test_named_parameters(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        names = [n for n, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        model = Linear(4, 8, rng=np.random.default_rng(0))
        assert model.num_parameters() == 4 * 8 + 8

    def test_named_modules(self):
        model = Sequential(Linear(2, 2), Sequential(ReLU()))
        names = [n for n, _ in model.named_modules()]
        assert "" in names
        assert "layers.0" in names
        assert "layers.1.layers.0" in names

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = Linear(3, 3, rng=np.random.default_rng(0))
        model(Tensor(np.ones((1, 3)))).sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        a = Linear(4, 4, rng=rng)
        b = Linear(4, 4, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_is_copied(self):
        a = Linear(2, 2, rng=np.random.default_rng(2))
        state = a.state_dict()
        a.weight.data += 1.0
        assert not np.allclose(state["weight"], a.weight.data)

    def test_mismatched_keys_rejected(self):
        a = Linear(2, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((2, 2))})

    def test_mismatched_shape_rejected(self):
        a = Linear(2, 2)
        bad = a.state_dict()
        bad["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape"):
            a.load_state_dict(bad)


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(8, 3, rng=np.random.default_rng(3))
        out = lin(Tensor(np.zeros((5, 8))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        lin = Linear(8, 3, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_quant_spec_applied(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(2, 32)))
        plain = Linear(32, 4, rng=np.random.default_rng(5))
        quant = Linear(32, 4, rng=np.random.default_rng(5), quant=QuantSpec.uniform("mx4"))
        assert not np.allclose(plain(x).data, quant(x).data)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(6))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_storage_quantization_changes_values(self):
        from repro.formats.registry import get_format

        emb = Embedding(10, 32, rng=np.random.default_rng(7))
        plain = emb(np.array([3])).data.copy()
        emb.storage_quant = get_format("mx4")
        quantized = emb(np.array([3])).data
        assert not np.allclose(plain, quantized)

    def test_storage_quantized_backward(self):
        from repro.formats.registry import get_format

        emb = Embedding(10, 8, rng=np.random.default_rng(8))
        emb.storage_quant = get_format("mx9")
        out = emb(np.array([0, 0, 5]))
        out.sum().backward()
        assert emb.weight.grad is not None
        assert emb.weight.grad[0].sum() == pytest.approx(2 * 8)


class TestOtherLayers:
    def test_layernorm(self):
        ln = LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(9).normal(size=(3, 8)) * 7))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)

    def test_dropout_respects_training_flag(self):
        drop = Dropout(0.9, rng=np.random.default_rng(10))
        x = Tensor(np.ones((4, 4)))
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_sequential_and_activations(self):
        model = Sequential(Linear(4, 4, rng=np.random.default_rng(11)), GELU())
        assert model(Tensor(np.zeros((1, 4)))).shape == (1, 4)
