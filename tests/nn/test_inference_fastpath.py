"""The no_grad inference fast path of the quantized tensor ops.

Under ``no_grad`` the quantized ops must skip the backward machinery —
in particular the allocation and quantization of the transposed backward
weight copy — while producing bit-identical forward outputs.
"""

import numpy as np
import pytest

from repro.formats.registry import get_format
from repro.nn.conv import Conv2d, conv2d
from repro.nn.quantized import QuantSpec, quantized_bmm, quantized_matmul
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture()
def spec():
    return QuantSpec.uniform("mx6")


class CountingFormat:
    """Wraps a format, counting quantize calls (not memoizable)."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def quantize(self, x, axis=-1, rounding="nearest", rng=None):
        self.calls += 1
        return self.inner.quantize(x, axis=axis, rounding=rounding, rng=rng)

    def cache_key(self):
        return None


class TestMatmulFastPath:
    def test_forward_bit_identical_with_and_without_skip(self, spec):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 7, 16)))
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        slow = quantized_matmul(a, w, spec)  # grad enabled: full training path
        with no_grad():
            fast = quantized_matmul(a, w, spec)
        np.testing.assert_array_equal(fast.data, slow.data)

    def test_fast_path_has_no_graph(self, spec):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(4, 16)))
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        with no_grad():
            out = quantized_matmul(a, w, spec)
        assert out._backward is None
        assert out._parents == ()
        assert not out.requires_grad

    def test_no_backward_weight_quantization_under_no_grad(self):
        """The transposed backward weight copy is never quantized."""
        backward_fmt = CountingFormat(get_format("mx6"))
        spec = QuantSpec(activation="mx6", weight="mx6", backward=None)
        spec.backward = backward_fmt
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(4, 16)), requires_grad=True)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)

        with no_grad():
            quantized_matmul(a, w, spec)
        assert backward_fmt.calls == 0

        # sanity: the training path does hit the backward role
        out = quantized_matmul(a, w, spec)
        out.backward(np.ones_like(out.data))
        assert backward_fmt.calls > 0


class TestBmmFastPath:
    def test_forward_bit_identical(self, spec):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(2, 4, 5, 8)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 8, 5)), requires_grad=True)
        slow = quantized_bmm(a, b, spec)
        with no_grad():
            fast = quantized_bmm(a, b, spec)
        np.testing.assert_array_equal(fast.data, slow.data)
        assert fast._backward is None

    def test_backward_role_untouched(self):
        backward_fmt = CountingFormat(get_format("mx6"))
        spec = QuantSpec(activation="mx6", weight="mx6")
        spec.backward = backward_fmt
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 8, 3)), requires_grad=True)
        with no_grad():
            quantized_bmm(a, b, spec)
        assert backward_fmt.calls == 0


class TestConvFastPath:
    def test_forward_bit_identical(self, spec):
        rng = np.random.default_rng(5)
        layer = Conv2d(3, 4, 3, padding=1, rng=rng, quant=spec)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=True)
        slow = layer(x)
        with no_grad():
            fast = layer(x)
        np.testing.assert_array_equal(fast.data, slow.data)
        assert fast._backward is None

    def test_conv_weight_memoized_across_calls(self, spec):
        """The reshaped conv weight quantizes once, then hits the cache."""
        rng = np.random.default_rng(6)
        layer = Conv2d(3, 4, 3, padding=1, rng=rng, quant=spec)
        x = Tensor(rng.normal(size=(1, 3, 6, 6)))
        with no_grad():
            first = layer(x).data
        cache = layer.weight._qstate["cache"]
        assert cache is not None and any("conv_w2" in k for k in cache)
        with no_grad():
            second = layer(x).data
        np.testing.assert_array_equal(first, second)
        # mutating the weight invalidates the memo
        layer.weight.data = layer.weight.data * 2.0
        with no_grad():
            third = layer(x).data
        assert not np.array_equal(first, third)


class TestEmbeddingStorageMemo:
    def test_storage_table_quantizes_once(self):
        from repro.nn.layers import Embedding

        emb = Embedding(16, 8, rng=np.random.default_rng(7))
        emb.storage_quant = get_format("mx6")
        indices = np.array([[0, 3, 5]])
        with no_grad():
            first = emb(indices).data
        assert any("storage" in k for k in emb.weight._qstate["cache"])
        with no_grad():
            second = emb(indices).data
        np.testing.assert_array_equal(first, second)
        emb.weight.data = emb.weight.data * 2.0
        with no_grad():
            third = emb(indices).data
        assert not np.array_equal(first, third)
