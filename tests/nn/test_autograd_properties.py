"""Property-based autograd verification: random op graphs vs finite
differences.

Builds random computation graphs from the Tensor op vocabulary and checks
every input gradient against central differences — the strongest available
evidence that the substrate differentiates arbitrary model compositions
correctly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor

# each entry: (name, function Tensor -> Tensor, domain guard on the data)
UNARY_OPS = [
    ("tanh", lambda t: t.tanh(), None),
    ("sigmoid", lambda t: t.sigmoid(), None),
    ("exp", lambda t: (t * 0.3).exp(), None),
    ("relu_shifted", lambda t: (t + 0.05).relu(), None),
    ("square", lambda t: t * t, None),
    ("sqrt_pos", lambda t: (t * t + 1.0).sqrt(), None),
    ("log_pos", lambda t: (t * t + 1.0).log(), None),
    ("scale", lambda t: t * -1.7 + 0.3, None),
    ("abs_soft", lambda t: (t * t + 1e-3).sqrt(), None),
]

BINARY_OPS = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("div_safe", lambda a, b: a / (b * b + 1.0)),
]


def build_graph(x: Tensor, y: Tensor, u_choices, b_choices):
    """Deterministically compose a scalar output from two inputs."""
    a, b = x, y
    for idx in u_choices:
        name, fn, _ = UNARY_OPS[idx % len(UNARY_OPS)]
        a = fn(a)
    for idx in b_choices:
        name, fn = BINARY_OPS[idx % len(BINARY_OPS)]
        a = fn(a, b)
    return (a * a).sum()


@given(
    seed=st.integers(0, 10_000),
    u_choices=st.lists(st.integers(0, 8), min_size=1, max_size=4),
    b_choices=st.lists(st.integers(0, 3), min_size=1, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_random_graph_gradients_match_finite_differences(seed, u_choices, b_choices):
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=(3, 4)) * 0.7
    y_data = rng.normal(size=(3, 4)) * 0.7

    x = Tensor(x_data.copy(), requires_grad=True)
    y = Tensor(y_data.copy(), requires_grad=True)
    build_graph(x, y, u_choices, b_choices).backward()

    def value(xd, yd):
        return float(build_graph(Tensor(xd), Tensor(yd), u_choices, b_choices).data)

    eps = 1e-6
    for tensor, data, other in ((x, x_data, y_data), (y, y_data, x_data)):
        numeric = np.zeros_like(data)
        flat = data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(data.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = value(x_data, y_data)
            flat[i] = orig - eps
            minus = value(x_data, y_data)
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        scale = max(1.0, np.abs(numeric).max())
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-4 * scale)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_matmul_chain_gradients(seed):
    """Chained matmuls with nonlinearities gradcheck end to end."""
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=(2, 3))
    w1_data = rng.normal(size=(3, 4))
    w2_data = rng.normal(size=(4, 2))

    def forward(a, w1, w2):
        return (((a @ w1).tanh() @ w2).sigmoid()).sum()

    a = Tensor(a_data.copy(), requires_grad=True)
    w1 = Tensor(w1_data.copy(), requires_grad=True)
    w2 = Tensor(w2_data.copy(), requires_grad=True)
    forward(a, w1, w2).backward()

    eps = 1e-6
    for tensor, data in ((a, a_data), (w1, w1_data), (w2, w2_data)):
        numeric = np.zeros_like(data)
        flat = data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(data.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = float(forward(Tensor(a_data), Tensor(w1_data), Tensor(w2_data)).data)
            flat[i] = orig - eps
            minus = float(forward(Tensor(a_data), Tensor(w1_data), Tensor(w2_data)).data)
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-5)
