"""Bit-identity of the fused inference schedule against the unfused one.

The fusion stages (activation residency, kernel epilogues + the in-place
attention pipeline, fused sibling projections) are pure *schedule*
changes: every combination of stages, kernel backend, and BDR format must
reproduce the pre-residency outputs bit for bit.  Cached incremental
decoding is held to the same bar — a fused decode step must match both
the fused and the unfused full-prefix forward exactly.
"""

import numpy as np
import pytest

from repro.kernels.registry import use_backend
from repro.models.gpt import GPT, GPT_SIZES
from repro.models.moe import MoEGPT
from repro.nn.residency import fusion_configured, fusion_disabled
from repro.nn.tensor import no_grad
from repro.serve.compile import compile_model

FORMATS = ["mx4", "mx6", "mx9", "msfp12", "msfp16"]
BACKENDS = ["numpy", "reference"]
#: named stage combinations: every stage off, each stage alone, all on
STAGE_GRID = {
    "off": dict(residency=False, epilogue=False, projections=False),
    "residency": dict(residency=True, epilogue=False, projections=False),
    "epilogue": dict(residency=True, epilogue=True, projections=False),
    "projections": dict(residency=True, epilogue=False, projections=True),
    "all": dict(residency=True, epilogue=True, projections=True),
}


def _model(model_cls, fmt):
    model = model_cls(50, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
    compile_model(model, fmt)
    return model


def _tokens(batch=4, length=32):
    return np.random.default_rng(1).integers(0, 50, size=(batch, length), dtype=np.int64)


class TestForwardParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("model_cls", [GPT, MoEGPT], ids=["gpt", "moe"])
    def test_all_stages_bit_identical(self, model_cls, fmt, backend):
        model = _model(model_cls, fmt)
        tokens = _tokens()
        with use_backend(backend), no_grad():
            with fusion_disabled():
                baseline = model.forward(tokens).data
            fused = model.forward(tokens).data
        np.testing.assert_array_equal(fused, baseline)

    @pytest.mark.parametrize("stages", sorted(STAGE_GRID), ids=sorted(STAGE_GRID))
    def test_each_stage_combination(self, stages):
        """Epilogue on/off x fused-projections on/off (and each alone)."""
        model = _model(GPT, "mx6")
        tokens = _tokens()
        with no_grad():
            with fusion_disabled():
                baseline = model.forward(tokens).data
            with fusion_configured(**STAGE_GRID[stages]):
                out = model.forward(tokens).data
        np.testing.assert_array_equal(out, baseline)

    def test_weight_only_cast_parity(self):
        """Activation=None specs: fused projections gate off, epilogue on."""
        model = GPT(50, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        compile_model(model, "mx6", activation="fp32")
        tokens = _tokens()
        with no_grad():
            with fusion_disabled():
                baseline = model.forward(tokens).data
            fused = model.forward(tokens).data
        np.testing.assert_array_equal(fused, baseline)

    def test_fp32_model_parity(self):
        """Unquantized models: residency/fusion must be inert."""
        model = GPT(50, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        model.eval()
        tokens = _tokens()
        with no_grad():
            with fusion_disabled():
                baseline = model.forward(tokens).data
            fused = model.forward(tokens).data
        np.testing.assert_array_equal(fused, baseline)

    def test_training_forward_never_fuses(self):
        """With gradients enabled the autograd path runs regardless."""
        model = _model(GPT, "mx6")
        model.train()
        tokens = _tokens(batch=2, length=16)
        out = model.loss(tokens)
        with fusion_disabled():
            model_b = _model(GPT, "mx6")
            model_b.train()
            expected = model_b.loss(tokens)
        np.testing.assert_array_equal(out.data, expected.data)
        out.backward()  # the fused-schedule flags must not break training


class TestCachedDecodeParity:
    @pytest.mark.parametrize("fmt", ["mx6", "mx9", "msfp12"])
    @pytest.mark.parametrize("model_cls", [GPT, MoEGPT], ids=["gpt", "moe"])
    def test_fused_decode_matches_fused_and_unfused_forward(self, model_cls, fmt):
        """Cached decode under fusion == full forward under either schedule."""
        model = _model(model_cls, fmt)
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, 50, size=(2, 9), dtype=np.int64)
        with no_grad():
            state = model.init_decode_state(batch=2)
            window = prompt
            logits_step = model.forward_step(window, state)
            for _ in range(6):
                nxt = np.argmax(logits_step.data[:, -1], axis=-1)[:, None]
                window = np.concatenate([window, nxt], axis=1)
                logits_step = model.forward_step(window, state)
            full_fused = model.forward(window).data
            with fusion_disabled():
                full_unfused = model.forward(window).data
        np.testing.assert_array_equal(full_fused, full_unfused)
        np.testing.assert_array_equal(logits_step.data[:, -1], full_fused[:, -1])

    def test_unfused_decode_matches_too(self):
        """The decode path with fusion off still reproduces the forward."""
        model = _model(GPT, "mx6")
        rng = np.random.default_rng(4)
        window = rng.integers(0, 50, size=(1, 12), dtype=np.int64)
        with no_grad(), fusion_disabled():
            state = model.init_decode_state(batch=1)
            logits_step = model.forward_step(window, state)
            full = model.forward(window).data
        np.testing.assert_array_equal(logits_step.data[:, -1], full[:, -1])


class TestBackendEpilogueParity:
    @pytest.mark.parametrize("fmt", ["mx6", "mx9", "msfp12"])
    def test_backends_agree_under_fusion(self, fmt):
        model = _model(GPT, fmt)
        tokens = _tokens(batch=2, length=24)
        with no_grad():
            with use_backend("numpy"):
                fast = model.forward(tokens).data
            with use_backend("reference"):
                oracle = model.forward(tokens).data
        np.testing.assert_array_equal(fast, oracle)
