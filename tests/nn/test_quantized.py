"""Unit tests for the quantized compute flow (Figure 8)."""

import numpy as np
import pytest

from repro.formats.registry import get_format
from repro.nn.quantized import QuantSpec, quantized_bmm, quantized_matmul
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSpecConstruction:
    def test_fp32_is_all_none(self):
        spec = QuantSpec.fp32()
        assert spec.activation is None and spec.weight is None and spec.backward is None

    def test_uniform_has_independent_instances(self):
        spec = QuantSpec.uniform("int8")
        assert spec.activation is not spec.weight
        assert spec.weight is not spec.backward

    def test_finetune_defaults_to_fp32_backward(self):
        spec = QuantSpec.finetune("mx6")
        assert spec.backward is None
        assert spec.activation.name == "MX6"

    def test_inference_weight_only(self):
        spec = QuantSpec.inference("mx4")
        assert spec.weight.name == "MX4"
        assert spec.backward is None


class TestQuantizedMatmul:
    def test_none_spec_is_plain_matmul(self, rng):
        a = Tensor(rng.normal(size=(3, 8)))
        w = Tensor(rng.normal(size=(8, 4)))
        np.testing.assert_array_equal(
            quantized_matmul(a, w, None).data, (a @ w).data
        )

    def test_forward_uses_quantized_operands(self, rng):
        a = Tensor(rng.normal(size=(3, 32)))
        w = Tensor(rng.normal(size=(32, 4)))
        spec = QuantSpec(activation=get_format("mx4"), weight=get_format("mx4"))
        out = quantized_matmul(a, w, spec)
        aq = get_format("mx4").quantize(a.data, axis=-1)
        wq = get_format("mx4").quantize(w.data, axis=0)
        np.testing.assert_allclose(out.data, aq @ wq)

    def test_mx9_close_to_fp32(self, rng):
        a = Tensor(rng.normal(size=(3, 64)))
        w = Tensor(rng.normal(size=(64, 4)))
        exact = (a @ w).data
        out = quantized_matmul(a, w, QuantSpec.uniform("mx9")).data
        assert np.abs(out - exact).max() / np.abs(exact).max() < 0.02

    def test_backward_shapes(self, rng):
        a = Tensor(rng.normal(size=(2, 5, 16)), requires_grad=True)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        quantized_matmul(a, w, QuantSpec.uniform("mx9")).sum().backward()
        assert a.grad.shape == a.shape
        assert w.grad.shape == w.shape

    def test_fp32_backward_when_finetune(self, rng):
        """backward=None must give exactly the unquantized gradients of the
        quantized forward (straight-through on FP32 path)."""
        a_data = rng.normal(size=(3, 32))
        w_data = rng.normal(size=(32, 4))
        spec = QuantSpec.finetune("mx4")
        a = Tensor(a_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        quantized_matmul(a, w, spec).sum().backward()
        g = np.ones((3, 4))
        np.testing.assert_allclose(a.grad, g @ w_data.T)
        np.testing.assert_allclose(w.grad, a_data.T @ g)

    def test_quantized_backward_differs(self, rng):
        a_data = rng.normal(size=(3, 32))
        w_data = rng.normal(size=(32, 4))
        grads = {}
        for name, spec in (
            ("fp32", QuantSpec.finetune("mx9")),
            ("mx4", QuantSpec(activation=get_format("mx9"),
                              weight=get_format("mx9"),
                              backward=get_format("mx4"))),
        ):
            a = Tensor(a_data.copy(), requires_grad=True)
            w = Tensor(w_data.copy(), requires_grad=True)
            quantized_matmul(a, w, spec).sum().backward()
            grads[name] = (a.grad.copy(), w.grad.copy())
        assert not np.allclose(grads["fp32"][0], grads["mx4"][0])
        assert not np.allclose(grads["fp32"][1], grads["mx4"][1])

    def test_transpose_then_quantize_direction(self, rng):
        """The backward weight copy quantizes along N (after transpose),
        which differs from the forward copy's K-direction blocks."""
        fmt = get_format("mx4")
        w = rng.normal(size=(32, 32)) * np.logspace(0, 3, 32)[:, None]
        forward_copy = fmt.quantize(w, axis=0)
        backward_copy = fmt.quantize(w.T, axis=0)
        assert not np.allclose(forward_copy.T, backward_copy)

    def test_shape_validation(self, rng):
        a = Tensor(rng.normal(size=(3, 8)))
        w = Tensor(rng.normal(size=(4, 8)))
        with pytest.raises(ValueError, match="reduction mismatch"):
            quantized_matmul(a, w, QuantSpec.uniform("mx9"))
        with pytest.raises(ValueError, match="2-D"):
            quantized_matmul(a, Tensor(rng.normal(size=(2, 8, 3))), QuantSpec.uniform("mx9"))


class TestQuantizedBmm:
    def test_none_spec(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        b = Tensor(rng.normal(size=(2, 4, 5)))
        np.testing.assert_array_equal(quantized_bmm(a, b, None).data, (a @ b).data)

    def test_forward_quantizes_both_reduction_dims(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 32)))
        b = Tensor(rng.normal(size=(2, 32, 5)))
        spec = QuantSpec(activation=get_format("mx4"), weight=get_format("mx4"))
        out = quantized_bmm(a, b, spec)
        aq = get_format("mx4").quantize(a.data, axis=-1)
        bq = get_format("mx4").quantize(b.data, axis=-2)
        np.testing.assert_allclose(out.data, aq @ bq)

    def test_backward_flows(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 16)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 16, 5)), requires_grad=True)
        quantized_bmm(a, b, QuantSpec.uniform("mx9")).sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape
