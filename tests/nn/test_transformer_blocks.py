"""Additional transformer-block behaviour tests (cross-attention masking,
feed-forward shapes, quantized blocks)."""

import numpy as np
import pytest

from repro.nn.attention import causal_mask
from repro.nn.quantized import QuantSpec
from repro.nn.tensor import Tensor
from repro.nn.transformer import DecoderBlock, FeedForward, TransformerBlock


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFeedForward:
    def test_default_hidden_is_4x(self, rng):
        ff = FeedForward(8, rng=rng)
        assert ff.fc1.out_features == 32

    def test_custom_hidden(self, rng):
        ff = FeedForward(8, hidden=5, rng=rng)
        assert ff.fc1.out_features == 5
        out = ff(Tensor(rng.normal(size=(2, 3, 8))))
        assert out.shape == (2, 3, 8)


class TestDecoderBlockMasks:
    def test_causal_self_attention(self, rng):
        block = DecoderBlock(8, 2, rng=rng)
        memory = Tensor(rng.normal(size=(1, 5, 8)))
        x = rng.normal(size=(1, 4, 8))
        base = block(Tensor(x), memory, self_mask=causal_mask(4)).data
        perturbed = x.copy()
        perturbed[0, 3] += 7.0
        out = block(Tensor(perturbed), memory, self_mask=causal_mask(4)).data
        np.testing.assert_allclose(out[0, :3], base[0, :3], atol=1e-12)

    def test_cross_attention_uses_memory(self, rng):
        block = DecoderBlock(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        mem_a = rng.normal(size=(1, 5, 8))
        mem_b = mem_a.copy()
        mem_b[0, 2] += 3.0
        out_a = block(x, Tensor(mem_a)).data
        out_b = block(x, Tensor(mem_b)).data
        assert not np.allclose(out_a, out_b)

    def test_cross_mask_blocks_memory_positions(self, rng):
        block = DecoderBlock(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        memory = rng.normal(size=(1, 5, 8))
        # mask out memory position 2 for every query
        cross_mask = np.zeros((4, 5), dtype=bool)
        cross_mask[:, 2] = True
        base = block(x, Tensor(memory), cross_mask=cross_mask).data
        perturbed = memory.copy()
        perturbed[0, 2] += 10.0
        out = block(x, Tensor(perturbed), cross_mask=cross_mask).data
        np.testing.assert_allclose(out, base, atol=1e-12)


class TestQuantizedBlocks:
    def test_quantized_block_trains(self, rng):
        from repro.nn.optim import Adam

        block = TransformerBlock(16, 4, rng=rng, quant=QuantSpec.uniform("mx9"))
        opt = Adam(block.parameters(), lr=1e-3)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        losses = []
        for _ in range(10):
            opt.zero_grad()
            loss = ((block(x) - 1.0) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]

    def test_mx9_block_close_to_fp32(self, rng):
        plain = TransformerBlock(16, 4, rng=np.random.default_rng(5))
        quant = TransformerBlock(16, 4, rng=np.random.default_rng(5),
                                 quant=QuantSpec.uniform("mx9"))
        x = Tensor(rng.normal(size=(1, 6, 16)))
        a, b = plain(x).data, quant(x).data
        assert np.abs(a - b).max() < 0.05 * np.abs(a).max() + 0.05
