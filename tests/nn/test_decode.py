"""Unit tests for the KV-cache decode subsystem (:mod:`repro.nn.decode`).

The central invariant: cached quantized payloads are bit-identical to the
corresponding slices of a full-tensor quantization, for every append
pattern — that is what makes incremental decoding exact.  Exercised under
both kernel backends.
"""

import numpy as np
import pytest

from repro.formats import get_format
from repro.kernels import use_backend
from repro.nn.attention import MultiHeadAttention, causal_mask
from repro.nn.decode import (
    CrossKV,
    DecodeState,
    KVCache,
    supports_cached_decode,
)
from repro.nn.quantized import (
    QuantSpec,
    quantize_partial_block,
    quantized_bmm_prequant,
)
from repro.nn.tensor import Tensor, no_grad

BACKENDS = ("numpy", "reference")


def make_cache(spec, batch=2, heads=2, head_dim=12, capacity=48):
    return KVCache(batch, heads, head_dim, capacity, spec)


def append_pattern(cache, k, v, sizes):
    start = 0
    for size in sizes:
        cache.append(k[:, :, start : start + size], v[:, :, start : start + size])
        start += size


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fmt_name", ["mx6", "mx9", "mx4"])
@pytest.mark.parametrize("sizes", [[1] * 37, [10, 1, 1, 5, 16, 3, 1], [37], [16, 16, 5]])
def test_cache_payloads_match_full_quantize(backend, fmt_name, sizes):
    """Sealed blocks + requantized tail == one full-tensor quantization."""
    spec = QuantSpec.inference(fmt_name, activation=fmt_name)
    rng = np.random.default_rng(7)
    total = sum(sizes)
    k = rng.normal(size=(2, 2, total, 12))
    v = rng.normal(size=(2, 2, total, 12))
    with use_backend(backend):
        cache = make_cache(spec)
        append_pattern(cache, k, v, sizes)
        fmt = spec.activation
        expect_kT = fmt.quantize(np.swapaxes(k, -1, -2), axis=-2)
        expect_v = fmt.quantize(v, axis=-2)
    np.testing.assert_array_equal(cache.keys_t, expect_kT)
    np.testing.assert_array_equal(cache.values, expect_v)
    assert cache.length == total
    assert cache.sealed == (total // fmt.block_size()) * fmt.block_size()


def test_cache_fp32_passthrough():
    cache = make_cache(None)
    rng = np.random.default_rng(0)
    k = rng.normal(size=(2, 2, 9, 12))
    v = rng.normal(size=(2, 2, 9, 12))
    append_pattern(cache, k, v, [4, 5])
    np.testing.assert_array_equal(cache.keys_t, np.swapaxes(k, -1, -2))
    np.testing.assert_array_equal(cache.values, v)
    assert cache.sealed == 9  # position-local: everything seals immediately


def test_cache_rewind_drops_unsealed_suffix():
    spec = QuantSpec.inference("mx6", activation="mx6")
    cache = make_cache(spec)
    rng = np.random.default_rng(1)
    k = rng.normal(size=(2, 2, 21, 12))
    v = rng.normal(size=(2, 2, 21, 12))
    append_pattern(cache, k, v, [21])
    assert (cache.length, cache.sealed) == (21, 16)
    cache.rewind()
    assert (cache.length, cache.sealed) == (16, 16)
    # re-appending the dropped suffix restores identical payloads
    cache.append(k[:, :, 16:], v[:, :, 16:])
    fmt = spec.activation
    np.testing.assert_array_equal(cache.values, fmt.quantize(v, axis=-2))


def test_cache_reset_reuses_buffers():
    spec = QuantSpec.inference("mx6", activation="mx6")
    cache = make_cache(spec)
    rng = np.random.default_rng(2)
    k = rng.normal(size=(2, 2, 10, 12))
    v = rng.normal(size=(2, 2, 10, 12))
    append_pattern(cache, k, v, [10])
    buf = cache.kT
    cache.reset()
    assert cache.length == 0 and cache.sealed == 0
    append_pattern(cache, k, v, [10])
    assert cache.kT is buf  # eviction keeps the preallocated storage


def test_cache_overflow_and_spec_change_rejected():
    spec = QuantSpec.inference("mx6", activation="mx6")
    cache = KVCache(1, 2, 12, 8, spec)
    rng = np.random.default_rng(3)
    k = rng.normal(size=(1, 2, 9, 12))
    with pytest.raises(ValueError, match="overflow"):
        cache.append(k, k)
    other = QuantSpec.inference("mx6", activation="mx6")
    with pytest.raises(ValueError, match="spec changed"):
        cache.append(k[:, :, :1], k[:, :, :1], spec=other)


def test_cache_rejects_stochastic_and_stateful_formats():
    stochastic = QuantSpec.uniform("mx6")
    stochastic.rounding = "stochastic"
    with pytest.raises(ValueError, match="stateless"):
        make_cache(stochastic)
    delayed = QuantSpec.inference("int8", activation=get_format("int8"))
    assert delayed.activation.cache_key() is None  # delayed scaling: stateful
    with pytest.raises(ValueError, match="stateless"):
        make_cache(delayed)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fmt_name", ["mx6", "mx9", "msfp16", "mx4"])
@pytest.mark.parametrize("axis", [-1, -2])
def test_quantize_partial_block_matches_quantize(backend, fmt_name, axis):
    """The partial-block entry point is bit-identical to Format.quantize."""
    try:
        fmt = get_format(fmt_name)
    except ValueError:
        pytest.skip(f"format {fmt_name} not registered")
    block = fmt.block_size()
    rng = np.random.default_rng(11)
    for length in (1, block // 2 or 1, block):
        shape = [3, 5, 7]
        shape[axis] = length
        x = rng.normal(size=shape) * np.exp2(rng.integers(-30, 30, size=(3, 1, 1)))
        with use_backend(backend):
            full = fmt.quantize(x, axis=axis)
            part = fmt.quantize_partial(x, axis=axis)
        np.testing.assert_array_equal(full, part, err_msg=f"{fmt_name} len={length}")


def test_quantize_partial_block_passthrough_and_helper():
    x = np.ones((2, 3))
    assert quantize_partial_block(x, None, axis=-1) is x
    fmt = get_format("mx6")
    np.testing.assert_array_equal(
        quantize_partial_block(x, fmt, axis=-1), fmt.quantize(x, axis=-1)
    )


def test_bmm_prequant_requires_no_grad():
    a = Tensor(np.ones((1, 2, 3)), requires_grad=True)
    with pytest.raises(RuntimeError, match="no_grad"):
        quantized_bmm_prequant(a, np.ones((1, 3, 2)), None)
    with no_grad():
        out = quantized_bmm_prequant(a, np.ones((1, 3, 2)), None)
    assert out.shape == (1, 2, 2)


@pytest.mark.parametrize("fmt_name", [None, "mx6"])
def test_cached_attention_matches_full(fmt_name):
    """Prefill + per-token steps reproduce full attention bit-for-bit."""
    rng = np.random.default_rng(5)
    spec = QuantSpec.inference(fmt_name, activation=fmt_name) if fmt_name else None
    attn = MultiHeadAttention(24, 2, rng=rng, quant=spec)
    x = Tensor(rng.normal(size=(2, 20, 24)))
    with no_grad():
        full = attn(x, mask=causal_mask(20))
        cache = KVCache(2, 2, 12, 32, spec)
        prefill = attn(Tensor(x.data[:, :20]), mask=causal_mask(20), cache=cache)
    np.testing.assert_array_equal(full.data, prefill.data)


def test_cross_kv_builds_once():
    rng = np.random.default_rng(6)
    spec = QuantSpec.inference("mx6", activation="mx6")
    attn = MultiHeadAttention(24, 2, rng=rng, quant=spec)
    memory = Tensor(rng.normal(size=(2, 13, 24)))
    cross = CrossKV()
    with no_grad():
        kT1, v1 = cross.project(attn, memory)
        kT2, v2 = cross.project(attn, Tensor(np.zeros((2, 13, 24))))
    assert kT1 is kT2 and v1 is v2  # frozen after the first build
    k = attn._split_heads(attn.k_proj(memory)).data
    fmt = spec.activation
    np.testing.assert_array_equal(kT1, fmt.quantize(np.swapaxes(k, -1, -2), axis=-2))


def test_decode_state_rewind_boundary():
    spec = QuantSpec.inference("mx6", activation="mx6")
    layers = [make_cache(spec), make_cache(spec)]
    state = DecodeState(layers, capacity=48)
    rng = np.random.default_rng(8)
    k = rng.normal(size=(2, 2, 21, 12))
    for cache in layers:
        append_pattern(cache, k, k, [21])
    state.position = 21
    assert state.rewind() == 16
    assert state.position == 16
    assert all(cache.length == 16 for cache in layers)


def test_supports_cached_decode_gating():
    from repro.data.synthetic import SyntheticLanguage
    from repro.flow.cast import direct_cast
    from repro.models.gpt import GPT, GPT_SIZES

    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, GPT_SIZES["GPT-XS"], rng=np.random.default_rng(0))
    assert supports_cached_decode(model)  # fp32
    direct_cast(model, "mx6")
    assert supports_cached_decode(model)
    direct_cast(model, "mx6?rounding=stochastic")
    assert not supports_cached_decode(model)
