"""Unit tests for LSTM layers."""

import numpy as np
import pytest

from repro.nn.quantized import QuantSpec
from repro.nn.recurrent import LSTM, LSTMCell
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLSTMCell:
    def test_shapes(self, rng):
        cell = LSTMCell(6, 10, rng=rng)
        h, c = cell(Tensor(rng.normal(size=(3, 6))))
        assert h.shape == (3, 10)
        assert c.shape == (3, 10)

    def test_state_threading(self, rng):
        cell = LSTMCell(4, 8, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)))
        h1, c1 = cell(x)
        h2, c2 = cell(x, (h1, c1))
        assert not np.allclose(h1.data, h2.data)

    def test_bounded_activations(self, rng):
        cell = LSTMCell(4, 8, rng=rng)
        h, _ = cell(Tensor(rng.normal(size=(2, 4)) * 100))
        assert np.all(np.abs(h.data) <= 1.0)  # tanh(o * sigmoid) bounded


class TestLSTM:
    def test_sequence_shapes(self, rng):
        lstm = LSTM(6, 12, rng=rng)
        seq, (h, c) = lstm(Tensor(rng.normal(size=(4, 7, 6))))
        assert seq.shape == (4, 7, 12)
        assert h.shape == (4, 12)

    def test_last_output_equals_final_state(self, rng):
        lstm = LSTM(4, 8, rng=rng)
        seq, (h, _) = lstm(Tensor(rng.normal(size=(2, 5, 4))))
        np.testing.assert_array_equal(seq.data[:, -1], h.data)

    def test_gradients_flow_through_time(self, rng):
        lstm = LSTM(4, 8, rng=rng)
        x = Tensor(rng.normal(size=(2, 6, 4)), requires_grad=True)
        seq, _ = lstm(x)
        seq.sum().backward()
        # gradient reaches the first timestep
        assert np.abs(x.grad[:, 0]).max() > 0

    def test_quantized_lstm_runs(self, rng):
        lstm = LSTM(4, 8, rng=rng, quant=QuantSpec.uniform("mx9"))
        seq, _ = lstm(Tensor(rng.normal(size=(2, 3, 4))))
        assert np.all(np.isfinite(seq.data))

    def test_causality(self, rng):
        """Future inputs cannot affect earlier outputs."""
        lstm = LSTM(4, 8, rng=rng)
        x = rng.normal(size=(1, 5, 4))
        base, _ = lstm(Tensor(x))
        perturbed = x.copy()
        perturbed[0, 4] += 10.0
        out, _ = lstm(Tensor(perturbed))
        np.testing.assert_allclose(out.data[0, :4], base.data[0, :4])
