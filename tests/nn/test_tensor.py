"""Gradient-correctness tests for the autograd engine."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, no_grad, stack


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    flat = grad.reshape(-1)
    xf = x.reshape(-1)
    for i in range(x.size):
        orig = xf[i]
        xf[i] = orig + eps
        plus = fn(x)
        xf[i] = orig - eps
        minus = fn(x)
        xf[i] = orig
        flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(build, shape, seed=0, atol=1e-6):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)

    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()

    def scalar_fn(arr):
        return float(build(Tensor(arr.copy())).data)

    expected = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwiseGrads:
    def test_add_mul(self):
        check_grad(lambda t: ((t + 2.0) * t * 3.0).sum(), (3, 4))

    def test_sub_div(self):
        check_grad(lambda t: ((t - 0.5) / (t * t + 2.0)).sum(), (5,))

    def test_pow(self):
        check_grad(lambda t: (t**3).sum(), (4,))

    def test_exp_log(self):
        check_grad(lambda t: ((t * t + 1.0).log() + t.exp()).sum(), (6,))

    def test_tanh_sigmoid_relu(self):
        check_grad(lambda t: (t.tanh() + t.sigmoid()).sum(), (8,))
        check_grad(lambda t: (t.relu() * t).sum(), (8,), seed=3)

    def test_sqrt_abs_clip(self):
        check_grad(lambda t: ((t * t + 1.0).sqrt()).sum(), (5,))
        check_grad(lambda t: t.clip(-0.5, 0.5).sum(), (9,), seed=2)

    def test_neg(self):
        check_grad(lambda t: (-t * t).sum(), (4,))


class TestMatmulGrads:
    def test_2d(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(4, 3))
        check_grad(lambda t: (t @ Tensor(w)).sum(), (2, 4))

    def test_batched(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(2, 4, 3))
        check_grad(lambda t: (t @ Tensor(w)).sum(), (2, 5, 4))

    def test_weight_grad(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(3, 4))
        check_grad(lambda t: (Tensor(a) @ t).sum(), (4, 2))


class TestShapeGrads:
    def test_reshape_transpose(self):
        check_grad(lambda t: (t.reshape(6, 2).T * 2).sum(), (3, 4))

    def test_getitem(self):
        check_grad(lambda t: (t[1:, ::2] * 3).sum(), (4, 6))

    def test_pad(self):
        check_grad(lambda t: (t.pad(((1, 1), (0, 2))) ** 2).sum(), (2, 3))

    def test_concat(self):
        rng = np.random.default_rng(4)
        other = rng.normal(size=(2, 3))
        check_grad(lambda t: (concat([t, Tensor(other)], axis=0) ** 2).sum(), (2, 3))

    def test_stack(self):
        rng = np.random.default_rng(5)
        other = rng.normal(size=(3,))
        check_grad(lambda t: (stack([t, Tensor(other)], axis=1) ** 2).sum(), (3,))

    def test_swapaxes(self):
        check_grad(lambda t: (t.swapaxes(0, 1) * t.T).sum(), (3, 4))


class TestReductionGrads:
    def test_sum_axis(self):
        check_grad(lambda t: (t.sum(axis=1) ** 2).sum(), (3, 4))

    def test_mean(self):
        check_grad(lambda t: (t.mean(axis=0) ** 2).sum(), (3, 4))

    def test_max(self):
        check_grad(lambda t: t.max(axis=1).sum(), (3, 5), seed=7)

    def test_var(self):
        check_grad(lambda t: t.var(axis=1).sum(), (3, 5))


class TestBroadcasting:
    def test_broadcast_add(self):
        rng = np.random.default_rng(6)
        b = rng.normal(size=(4,))
        check_grad(lambda t: ((t + Tensor(b)) ** 2).sum(), (3, 4))

    def test_broadcast_grad_shape(self):
        bias = Tensor(np.zeros(4), requires_grad=True)
        x = Tensor(np.ones((3, 4)))
        out = (x + bias).sum()
        out.backward()
        assert bias.grad.shape == (4,)
        np.testing.assert_array_equal(bias.grad, np.full(4, 3.0))


class TestMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (t * 2).backward()

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError, match="does not require grad"):
            Tensor(np.ones(1)).backward()

    def test_grad_accumulates(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_array_equal(t.grad, [5.0, 5.0])

    def test_no_grad_context(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_diamond_graph(self):
        """Shared subexpressions must backprop once through each path."""
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3
        out = (a * a).sum()
        out.backward()
        assert t.grad[0] == pytest.approx(2 * 3 * 6.0)  # d/dt (3t)^2 = 18t

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0
        r = Tensor.randn(5, rng=np.random.default_rng(0))
        assert r.shape == (5,)
