"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import bce_with_logits, mse_loss, nll_loss
from repro.nn.tensor import Tensor


class TestMSE:
    def test_zero_at_target(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert float(mse_loss(pred, np.array([1.0, 2.0])).data) == 0.0

    def test_known_value(self):
        pred = Tensor(np.array([0.0, 0.0]))
        assert float(mse_loss(pred, np.array([1.0, 3.0])).data) == pytest.approx(5.0)

    def test_gradient(self):
        pred = Tensor(np.array([2.0]), requires_grad=True)
        mse_loss(pred, np.array([0.0])).backward()
        assert pred.grad[0] == pytest.approx(4.0)  # d/dp (p^2) = 2p


class TestBCEWithLogits:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=20)
        targets = rng.integers(2, size=20).astype(float)
        loss = float(bce_with_logits(Tensor(logits), targets).data)
        p = 1 / (1 + np.exp(-logits))
        expected = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        assert loss == pytest.approx(expected, rel=1e-9)

    def test_numerically_stable_at_extremes(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-9)
        loss_bad = bce_with_logits(logits, np.array([0.0, 1.0]))
        assert np.isfinite(float(loss_bad.data))

    def test_gradient_direction(self):
        logits = Tensor(np.array([0.0]), requires_grad=True)
        bce_with_logits(logits, np.array([1.0])).backward()
        assert logits.grad[0] < 0  # push the logit up toward the positive label


class TestNLL:
    def test_alias_of_cross_entropy(self):
        from repro.nn.functional import cross_entropy

        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 5))
        targets = rng.integers(5, size=4)
        a = float(nll_loss(Tensor(logits), targets).data)
        b = float(cross_entropy(Tensor(logits), targets).data)
        assert a == b
