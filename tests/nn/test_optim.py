"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def quadratic_loss(t: Tensor) -> Tensor:
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    diff = t - target
    return (diff * diff).sum()


class TestSGD:
    def test_single_step(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.8)

    def test_momentum_accumulates(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        first = p.data.copy()
        p.grad = np.array([1.0])
        opt.step()
        assert (first[0] - p.data[0]) > 0.1  # second step larger

    def test_weight_decay(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(10.0 - 0.1 * 0.5 * 10.0)

    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0, 3.0], atol=1e-4)

    def test_skips_gradless_params(self):
        p = Tensor(np.array([5.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        assert p.data[0] == 5.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction the first Adam step is ~lr regardless of
        gradient scale."""
        for scale in (1e-3, 1.0, 1e3):
            p = Tensor(np.array([0.0]), requires_grad=True)
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale])
            opt.step()
            assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)


class TestClipGradNorm:
    def test_clipping(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 3.0)  # norm 6
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        p.grad = np.array([0.1, 0.1])
        opt.clip_grad_norm(10.0)
        np.testing.assert_array_equal(p.grad, [0.1, 0.1])
