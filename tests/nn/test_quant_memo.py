"""Quantized-weight memoization and the Tensor data-version counter."""

import numpy as np
import pytest

from repro.formats.bdr_format import MXFormat
from repro.formats.registry import get_format
from repro.nn.optim import SGD
from repro.nn.quantized import QuantSpec, quantized_bmm, quantized_matmul
from repro.nn.tensor import Tensor


class CountingMX(MXFormat):
    """MX format that counts quantize invocations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def quantize(self, *args, **kwargs):
        self.calls += 1
        return super().quantize(*args, **kwargs)


class UncachedMX(CountingMX):
    """Stateless but opted out of memoization."""

    def cache_key(self):
        return None


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestVersionCounter:
    def test_assignment_bumps(self):
        t = Tensor(np.zeros(3))
        v = t.version
        t.data = np.ones(3)
        assert t.version == v + 1

    def test_inplace_augmented_bumps(self):
        t = Tensor(np.ones(3))
        v = t.version
        t.data -= 0.5
        assert t.version == v + 1

    def test_bump_version_manual(self):
        t = Tensor(np.ones(3))
        t.data[0] = 5.0  # bypasses the setter
        v = t.version
        t.bump_version()
        assert t.version == v + 1

    def test_setter_coerces_dtype(self):
        t = Tensor(np.ones(3))
        t.data = np.ones(3, dtype=np.float32)
        assert t.data.dtype == np.float64


class TestWeightMemoization:
    def _spec(self, fmt):
        return QuantSpec(activation=get_format("mx9"), weight=fmt,
                         backward=get_format("mx9"))

    def test_forward_weight_quantized_once_across_steps(self, rng):
        fmt = CountingMX(m=7)
        spec = self._spec(fmt)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        for _ in range(5):
            a = Tensor(rng.normal(size=(4, 16)))
            quantized_matmul(a, w, spec)
        assert fmt.calls == 1

    def test_memoized_result_is_identical(self, rng):
        cached = CountingMX(m=7)
        uncached = UncachedMX(m=7)
        w_data = rng.normal(size=(16, 8))
        a_data = rng.normal(size=(4, 16))
        outs = []
        for fmt in (cached, uncached):
            w = Tensor(w_data.copy(), requires_grad=True)
            for _ in range(3):
                out = quantized_matmul(Tensor(a_data), w, self._spec(fmt))
            outs.append(out.data)
        assert cached.calls == 1 and uncached.calls == 3
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_data_update_invalidates(self, rng):
        fmt = CountingMX(m=7)
        spec = self._spec(fmt)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        a = Tensor(rng.normal(size=(4, 16)))
        quantized_matmul(a, w, spec)
        w.data -= 0.1
        quantized_matmul(a, w, spec)
        assert fmt.calls == 2

    def test_training_step_requantizes(self, rng):
        """The optimizer's in-place update must invalidate the cache, so
        a training loop with memoization matches one without, bit for bit."""
        w_init = rng.normal(size=(8, 4))
        batches = [rng.normal(size=(2, 8)) for _ in range(4)]

        def train(fmt_cls):
            fmt = fmt_cls(m=7)
            spec = self._spec(fmt)
            w = Tensor(w_init.copy(), requires_grad=True)
            opt = SGD([w], lr=0.05)
            for batch in batches:
                out = quantized_matmul(Tensor(batch), w, spec)
                out.sum().backward()
                opt.step()
                opt.zero_grad()
            return w.data

        np.testing.assert_array_equal(train(CountingMX), train(UncachedMX))

    def test_transposed_weight_cached_separately(self, rng):
        fmt = CountingMX(m=7)
        spec = QuantSpec(activation=get_format("mx9"), weight=get_format("mx9"),
                         backward=fmt)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        for _ in range(3):
            a = Tensor(rng.normal(size=(4, 16)), requires_grad=True)
            quantized_matmul(a, w, spec).sum().backward()
        # backward quantizes Q(w^T) (cached once) plus the per-step error
        # and activation tensors (never cached)
        assert fmt.calls == 1 + 3 * 3

    def test_stateful_format_never_cached(self, rng):
        fmt = get_format("int8")  # delayed scaling: has history
        assert fmt.cache_key() is None
        spec = QuantSpec(activation=None, weight=fmt, backward=None)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        a = Tensor(rng.normal(size=(4, 16)))
        q1 = quantized_matmul(a, w, spec)
        q2 = quantized_matmul(a, w, spec)
        # delayed scaling keeps updating its history, so outputs may differ
        # and the cache must not have frozen the first result
        assert w._qstate["cache"] in (None, {})
        assert q1.shape == q2.shape

    def test_stochastic_rounding_never_cached(self, rng):
        fmt = CountingMX(m=2)
        spec = self._spec(fmt)
        spec.rounding = "stochastic"
        spec.rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        a = Tensor(rng.normal(size=(4, 16)))
        quantized_matmul(a, w, spec)
        quantized_matmul(a, w, spec)
        assert fmt.calls == 2

    def test_detached_alias_sees_inplace_update(self, rng):
        """Regression: detach() shares the data buffer, so an in-place
        optimizer update through the original handle must invalidate the
        cache held on the detached alias too."""
        fmt = CountingMX(m=7)
        spec = self._spec(fmt)
        w = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        d = w.detach()
        a = Tensor(rng.normal(size=(4, 16)))
        quantized_matmul(a, d, spec)          # caches Q(w) on the alias
        w.data -= 0.25                        # mutates the shared buffer
        out = quantized_matmul(a, d, spec)
        fresh = quantized_matmul(a, Tensor(w.data.copy()), self._spec(CountingMX(m=7)))
        np.testing.assert_array_equal(out.data, fresh.data)
        assert fmt.calls == 2  # second call re-quantized, no stale hit

    def test_bmm_caches_leaf_operands_only(self, rng):
        fmt = CountingMX(m=7)
        spec = QuantSpec(activation=fmt, weight=fmt, backward=fmt)
        a = Tensor(rng.normal(size=(2, 4, 16)))   # leaf
        b = Tensor(rng.normal(size=(2, 16, 4)))   # leaf
        quantized_bmm(a, b, spec)
        first = fmt.calls
        quantized_bmm(a, b, spec)
        assert fmt.calls == first  # both operands memoized

    def test_bmm_matches_plain_path(self, rng):
        spec = QuantSpec.uniform("mx6")
        a_data = rng.normal(size=(2, 4, 16))
        b_data = rng.normal(size=(2, 16, 4))
        a1, b1 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        out = quantized_bmm(a1, b1, spec)
        out.sum().backward()
        # independent run through fresh tensors/formats
        a2, b2 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        out2 = quantized_bmm(a2, b2, QuantSpec.uniform("mx6"))
        out2.sum().backward()
        np.testing.assert_array_equal(out.data, out2.data)
        np.testing.assert_array_equal(a1.grad, a2.grad)
        np.testing.assert_array_equal(b1.grad, b2.grad)
