"""Unit tests for convolution via im2col."""

import numpy as np
import pytest

from repro.nn.conv import Conv2d, avg_pool2d, col2im, conv2d, im2col, max_pool2d
from repro.nn.quantized import QuantSpec
from repro.nn.tensor import Tensor


def naive_conv(x, w, stride=1, padding=0):
    b, c, h, width = x.shape
    oc, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((b, oc, oh, ow))
    for bi in range(b):
        for oci in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = x[bi, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[bi, oci, i, j] = np.sum(patch * w[oci])
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, naive_conv(x, w, stride, padding), atol=1e-10)

    def test_bias(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 1, 1))
        bias = np.array([1.0, 2.0, 3.0])
        out = conv2d(Tensor(x), Tensor(w), Tensor(bias))
        np.testing.assert_allclose(
            out.data, naive_conv(x, w) + bias[None, :, None, None]
        )

    def test_quantized_forward(self, rng):
        x = rng.normal(size=(1, 4, 6, 6))
        w = rng.normal(size=(2, 4, 3, 3))
        plain = conv2d(Tensor(x), Tensor(w), padding=1)
        quant = conv2d(Tensor(x), Tensor(w), padding=1, quant=QuantSpec.uniform("mx4"))
        assert not np.allclose(plain.data, quant.data)
        # MX9 should be a tight approximation
        mx9 = conv2d(Tensor(x), Tensor(w), padding=1, quant=QuantSpec.uniform("mx9"))
        assert np.abs(mx9.data - plain.data).max() < 0.05 * np.abs(plain.data).max()


class TestConvBackward:
    def test_gradcheck(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        bt = Tensor(np.zeros(2), requires_grad=True)
        out = conv2d(xt, wt, bt, stride=1, padding=1)
        (out * out).sum().backward()

        eps = 1e-6
        for target, tensor in (("x", xt), ("w", wt)):
            arr = x if target == "x" else w
            numeric = np.zeros_like(arr)
            flat_num = numeric.reshape(-1)
            flat = arr.reshape(-1)
            for i in range(arr.size):
                orig = flat[i]
                flat[i] = orig + eps
                plus = (naive_conv(x, w, 1, 1) ** 2).sum()
                flat[i] = orig - eps
                minus = (naive_conv(x, w, 1, 1) ** 2).sum()
                flat[i] = orig
                flat_num[i] = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(tensor.grad, numeric, atol=1e-4)

    def test_bias_grad(self, rng):
        x = rng.normal(size=(2, 1, 4, 4))
        w = rng.normal(size=(3, 1, 3, 3))
        b = Tensor(np.zeros(3), requires_grad=True)
        conv2d(Tensor(x), Tensor(w), b, padding=1).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 2 * 4 * 4))


class TestIm2Col:
    def test_roundtrip_ones(self):
        """col2im of all-ones patch grads counts patch membership."""
        x_shape = (1, 1, 4, 4)
        cols = np.ones((1, 2, 2, 9))
        folded = col2im(cols, x_shape, 3, 3, stride=1, padding=0)
        # center pixels participate in all 4 windows
        assert folded[0, 0, 1, 1] == 4.0
        assert folded[0, 0, 0, 0] == 1.0

    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, stride=2, padding=1)
        assert cols.shape == (2, 4, 4, 27)


class TestConv2dModule:
    def test_groups_depthwise(self, rng):
        conv = Conv2d(4, 4, 3, padding=1, groups=4, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 4, 6, 6))))
        assert out.shape == (1, 4, 6, 6)

    def test_groups_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            Conv2d(3, 4, 3, groups=2)

    def test_depthwise_channel_independence(self, rng):
        """A depthwise conv's output channel i only depends on input i."""
        conv = Conv2d(2, 2, 3, padding=1, groups=2, bias=False, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        base = conv(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 1] += 10.0
        out = conv(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, 0], base[0, 0])
        assert not np.allclose(out[0, 1], base[0, 1])


class TestPooling:
    def test_avg_pool(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        np.testing.assert_array_equal(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)
