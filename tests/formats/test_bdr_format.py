"""Unit tests for the BDRFormat adapter classes."""

import numpy as np
import pytest

from repro.formats.bdr_format import BDRFormat, BFPFormat, IntFormat, MXFormat, VSQFormat
from repro.core.bdr import BDRConfig


class TestMXFormat:
    def test_matches_engine(self):
        from repro.core.mx import mx_quantize

        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 32))
        np.testing.assert_array_equal(MXFormat(m=7).quantize(x), mx_quantize(x, "MX9"))

    def test_hardware_scaling_is_stateless(self):
        fmt = MXFormat(m=4)
        x = np.ones((1, 16))
        q1 = fmt.quantize(x)
        fmt.quantize(np.full((1, 16), 1e6))
        q2 = fmt.quantize(x)
        np.testing.assert_array_equal(q1, q2)


class TestIntFormat:
    def test_delayed_scaling_is_stateful(self):
        fmt = IntFormat(8, scaling="delayed")
        x = np.ones((1, 64))
        q1 = fmt.quantize(x).copy()
        fmt.quantize(np.full((1, 64), 1e4))
        q3 = fmt.quantize(x)
        assert not np.allclose(q1, q3)  # history amax changed the grid

    def test_reset_state(self):
        fmt = IntFormat(8, scaling="delayed")
        fmt.quantize(np.full((1, 64), 1e4))
        fmt.reset_state()
        q = fmt.quantize(np.ones((1, 64)))
        np.testing.assert_allclose(q, 1.0, rtol=0.02)

    def test_min_bits(self):
        with pytest.raises(ValueError):
            IntFormat(1)

    def test_name(self):
        assert IntFormat(8).name == "scaled INT8"


class TestVSQFormat:
    def test_config_shape(self):
        fmt = VSQFormat(6, d2=8)
        assert fmt.config.m == 5
        assert fmt.config.d2 == 8
        assert fmt.config.ss_type == "int"

    def test_quantize_runs(self):
        rng = np.random.default_rng(0)
        q = VSQFormat(4).quantize(rng.normal(size=(8, 64)))
        assert q.shape == (8, 64)


class TestBFPFormat:
    def test_msfp16_bits(self):
        assert BFPFormat(m=7, k1=16).bits_per_element == 8.5


class TestBDRFormatValidation:
    def test_bad_scaling_mode(self):
        with pytest.raises(ValueError):
            BDRFormat(BDRConfig.int_sw(m=7), scaling="magic")

    def test_pow2_ignores_scaling_mode(self):
        # hardware-scaled formats build no scaler even in delayed mode
        fmt = BDRFormat(BDRConfig.mx(m=7), scaling="delayed")
        assert fmt._scaler is None
