"""Unit tests for the format registry."""

import numpy as np
import pytest

from repro.formats.registry import (
    FIGURE7_FORMATS,
    get_format,
    is_registered,
    list_formats,
    register_format,
)


class TestLookup:
    def test_all_figure7_formats_resolve(self):
        for name in FIGURE7_FORMATS:
            fmt = get_format(name)
            assert fmt.bits_per_element > 0

    def test_case_insensitive(self):
        assert get_format("MX9").name == get_format("mx9").name

    def test_hyphen_and_space_normalization(self):
        assert get_format("fp8-e4m3").name == "FP8 - E4M3"
        assert get_format("FP8 E4M3").name == "FP8 - E4M3"

    def test_unknown_format(self):
        with pytest.raises(ValueError, match="unknown format"):
            get_format("mx5")

    def test_fresh_instances(self):
        a = get_format("int8")
        b = get_format("int8")
        assert a is not b
        # state does not leak between instances
        a.quantize(np.array([1000.0]))
        qb = b.quantize(np.array([1.0]))
        assert qb[0] == pytest.approx(1.0, rel=0.01)

    def test_overrides_forwarded(self):
        vsq = get_format("vsq6", d2=10)
        assert vsq.config.d2 == 10

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_format("mx9", lambda: None)

    def test_list_formats_sorted(self):
        names = list_formats()
        assert names == sorted(names)
        assert "mx9" in names and "fp32" in names

    def test_is_registered(self):
        assert is_registered("mx9")
        assert is_registered("MX-9".replace("-", ""))
        assert not is_registered("mx5")


class TestSuggestions:
    def test_close_miss_suggests_neighbors(self):
        with pytest.raises(ValueError, match="did you mean") as excinfo:
            get_format("mx7")
        message = str(excinfo.value)
        assert "'mx4'" in message or "'mx6'" in message or "'mx9'" in message

    def test_typo_in_scalar_float(self):
        with pytest.raises(ValueError, match="did you mean.*fp8_e4m3"):
            get_format("fp8_e4m2")

    def test_far_miss_lists_known_formats(self):
        with pytest.raises(ValueError, match="known formats"):
            get_format("zzzzzz")


class TestRegisterNormalization:
    def test_dashed_name_registers_and_resolves(self):
        register_format("_Test-Spaced Name", lambda: get_format("mx6"))
        try:
            assert is_registered("_test-spaced name")
            assert get_format("_TEST_SPACED_NAME").name == "MX6"
        finally:
            from repro.formats import registry

            registry._FACTORIES.pop("_test_spaced_name", None)


class TestOverwrite:
    def test_overwrite_replaces_factory(self):
        register_format("_test_overwrite", lambda: get_format("mx6"))
        try:
            with pytest.raises(ValueError, match="overwrite=True"):
                register_format("_test_overwrite", lambda: get_format("mx9"))
            register_format(
                "_test_overwrite", lambda: get_format("mx9"), overwrite=True
            )
            assert get_format("_test_overwrite").name == "MX9"
        finally:
            from repro.formats import registry

            registry._FACTORIES.pop("_test_overwrite", None)


class TestExpectedBits:
    @pytest.mark.parametrize(
        "name,bits",
        [
            ("mx9", 9.0),
            ("mx6", 6.0),
            ("mx4", 4.0),
            ("msfp16", 8.5),
            ("msfp12", 4.5),
            ("fp8_e4m3", 8.0),
            ("fp32", 32.0),
        ],
    )
    def test_bits(self, name, bits):
        assert get_format(name).bits_per_element == pytest.approx(bits, abs=0.05)

    def test_fp32_identity(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        np.testing.assert_array_equal(get_format("fp32").quantize(x), x)
