"""Property-based tests on the scalar minifloat quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.scalar_float import (
    FP4_E2M1,
    FP6_E2M3,
    FP6_E3M2,
    FP8_E4M3,
    FP8_E5M2,
    quantize_to_spec,
)

SPECS = [FP8_E4M3, FP8_E5M2, FP6_E3M2, FP6_E2M3, FP4_E2M1]

spec_strategy = st.sampled_from(SPECS)
value_strategy = st.floats(
    min_value=-1e5, max_value=1e5, allow_nan=False, allow_infinity=False
).map(lambda v: 0.0 if abs(v) < 1e-12 else v)


@given(spec=spec_strategy, values=st.lists(value_strategy, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_idempotent(spec, values):
    x = np.array(values)
    once = quantize_to_spec(x, spec)
    np.testing.assert_array_equal(quantize_to_spec(once, spec), once)


@given(spec=spec_strategy, values=st.lists(value_strategy, min_size=2, max_size=40))
@settings(max_examples=80, deadline=None)
def test_monotone(spec, values):
    """Round-to-nearest is order preserving."""
    x = np.sort(np.array(values))
    q = quantize_to_spec(x, spec)
    assert np.all(np.diff(q) >= 0)


@given(spec=spec_strategy, values=st.lists(value_strategy, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_sign_antisymmetric(spec, values):
    x = np.array(values)
    np.testing.assert_array_equal(quantize_to_spec(-x, spec), -quantize_to_spec(x, spec))


@given(spec=spec_strategy, values=st.lists(value_strategy, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_error_bounded_by_half_ulp_in_range(spec, values):
    x = np.array(values)
    in_range = np.abs(x) <= spec.max_value
    q = quantize_to_spec(x, spec)
    exp = np.clip(
        np.floor(np.log2(np.maximum(np.abs(x), 1e-300))), spec.emin, spec.emax
    )
    half_ulp = 2.0 ** (exp - spec.mantissa_bits - 1)
    err = np.abs(q - x)
    # rounding up at an exponent boundary doubles the step, so allow 1 ulp
    assert np.all(err[in_range] <= 2 * half_ulp[in_range] + 1e-300)


@given(spec=spec_strategy, value=st.floats(min_value=1e5, max_value=1e30))
@settings(max_examples=30, deadline=None)
def test_saturates_to_max(spec, value):
    if value <= spec.max_value:
        return
    assert quantize_to_spec(np.array([value]), spec)[0] == spec.max_value


@pytest.mark.parametrize("spec", SPECS)
def test_all_grid_values_fixed_points(spec):
    grid = spec.decode_all_values()
    both = np.concatenate([-grid[::-1], grid])
    np.testing.assert_array_equal(quantize_to_spec(both, spec), both)
