"""Unit tests for the parametric scalar minifloat formats."""

import numpy as np
import pytest

from repro.formats.scalar_float import (
    BF16,
    FP4_E2M1,
    FP4_E3M0,
    FP6_E2M3,
    FP6_E3M2,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FloatSpec,
    ScalarFloatFormat,
    quantize_to_spec,
)


class TestSpecConstants:
    """Max values must match the published encodings."""

    @pytest.mark.parametrize(
        "spec,max_value",
        [
            (FP8_E4M3, 448.0),
            (FP8_E5M2, 57344.0),
            (FP6_E3M2, 28.0),
            (FP6_E2M3, 7.5),
            (FP4_E2M1, 6.0),
            (FP4_E3M0, 16.0),
            (FP16, 65504.0),
        ],
    )
    def test_max_values(self, spec, max_value):
        assert spec.max_value == max_value

    def test_bf16_range_matches_fp32(self):
        assert BF16.emax == 127
        assert BF16.emin == -126

    def test_total_bits(self):
        assert FP8_E4M3.total_bits == 8
        assert FP4_E2M1.total_bits == 4
        assert BF16.total_bits == 16

    def test_min_subnormals(self):
        assert FP8_E4M3.min_subnormal == 2.0**-9
        assert FP4_E2M1.min_subnormal == 0.5

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            FloatSpec(0, 3)
        with pytest.raises(ValueError):
            FloatSpec(4, -1)
        with pytest.raises(ValueError):
            FloatSpec(4, 3, "bogus")


class TestQuantizeToSpec:
    def test_outputs_in_value_set(self):
        rng = np.random.default_rng(0)
        for spec in (FP8_E4M3, FP8_E5M2, FP4_E2M1, FP6_E2M3):
            values = spec.decode_all_values()
            x = rng.normal(scale=spec.max_value / 3, size=500)
            q = quantize_to_spec(x, spec)
            for v in np.abs(q):
                assert np.any(np.isclose(values, v, rtol=0, atol=0)), (spec.name, v)

    def test_saturation(self):
        q = quantize_to_spec(np.array([1e9, -1e9]), FP8_E4M3)
        np.testing.assert_array_equal(q, [448.0, -448.0])

    def test_exact_values_preserved(self):
        # representable values must round-trip exactly
        x = np.array([1.0, 1.5, 2.0, 3.0, 6.0, 0.5, -6.0])
        np.testing.assert_array_equal(quantize_to_spec(x, FP4_E2M1), x)

    def test_fp4_grid(self):
        # E2M1 representable magnitudes: 0 .5 1 1.5 2 3 4 6
        expected = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]
        np.testing.assert_array_equal(FP4_E2M1.decode_all_values(), expected)

    def test_subnormal_rounding(self):
        # halfway between 0 and min subnormal of E4M3 rounds to even (0)
        tiny = FP8_E4M3.min_subnormal
        q = quantize_to_spec(np.array([tiny / 2, tiny * 0.76]), FP8_E4M3)
        np.testing.assert_array_equal(q, [0.0, tiny])

    def test_zero(self):
        assert quantize_to_spec(np.array([0.0]), FP8_E4M3)[0] == 0.0

    def test_bf16_matches_bit_manipulation(self):
        from repro.nn.precision import round_bf16

        rng = np.random.default_rng(1)
        x = rng.normal(size=1000) * rng.uniform(1e-3, 1e3, size=1000)
        np.testing.assert_allclose(quantize_to_spec(x, BF16), round_bf16(x), rtol=0)


class TestScalarFloatFormat:
    def test_direct_cast_mode(self):
        fmt = ScalarFloatFormat(FP8_E4M3, scaling="none")
        x = np.array([100.0, 200.0, 500.0])
        q = fmt.quantize(x)
        assert q[-1] == 448.0  # saturated, no rescaling

    def test_jit_scaling_avoids_saturation(self):
        fmt = ScalarFloatFormat(FP8_E4M3, scaling="jit")
        x = np.array([100.0, 200.0, 5000.0])
        q = fmt.quantize(x)
        assert abs(q[-1] - 5000.0) / 5000.0 < 0.1

    def test_delayed_scaling_uses_history(self):
        fmt = ScalarFloatFormat(FP8_E4M3, scaling="delayed", window=4)
        fmt.quantize(np.array([1000.0]))  # builds history
        q = fmt.quantize(np.array([1.0]))
        # scale from history (1000/448) makes the grid coarse
        assert q[0] != 1.0

    def test_reset_state(self):
        fmt = ScalarFloatFormat(FP8_E4M3, scaling="delayed")
        fmt.quantize(np.array([1000.0]))
        fmt.reset_state()
        assert fmt._scaler.history_amax == 0.0

    def test_bits_per_element(self):
        assert ScalarFloatFormat(FP8_E4M3, scaling="none").bits_per_element == 8.0
        delayed = ScalarFloatFormat(FP8_E4M3, scaling="delayed", k1=32)
        assert delayed.bits_per_element == pytest.approx(9.0)

    def test_bad_scaling_mode(self):
        with pytest.raises(ValueError):
            ScalarFloatFormat(FP8_E4M3, scaling="static")
