"""Unit tests for the three-level scaling extension."""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.mx import MX6, MX9
from repro.fidelity.qsnr import qsnr
from repro.formats.bdr_format import BDRFormat
from repro.formats.three_level import ThreeLevelFormat


class TestConstruction:
    def test_requires_hardware_inner(self):
        with pytest.raises(ValueError, match="hardware-scaled"):
            ThreeLevelFormat(BDRConfig.int_sw(m=7))

    def test_parent_must_be_coarser(self):
        with pytest.raises(ValueError, match="exceed"):
            ThreeLevelFormat(MX9, k0=16)

    def test_bad_scaling(self):
        with pytest.raises(ValueError, match="scaling"):
            ThreeLevelFormat(MX9, scaling="static")

    def test_bits_accounting(self):
        fmt = ThreeLevelFormat(MX9, k0=1024)
        assert fmt.bits_per_element == pytest.approx(9.0 + 32 / 1024)


class TestNumerics:
    def test_matches_two_level_for_in_range_data(self):
        """For data inside the 8-bit exponent range, the parent scale only
        recenters; fidelity stays close to plain MX."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 256))
        two = BDRFormat(MX6).quantize(x)
        three = ThreeLevelFormat(MX6, k0=1024).quantize(x)
        assert abs(qsnr(x, three) - qsnr(x, two)) < 3.0

    def test_extends_dynamic_range(self):
        """The parent scale is a range-extension mechanism: with a *narrow*
        shared-exponent budget (d1 = 4), data outside 2^(+-8) clamps and
        plain two-level quantization collapses; the FP32 parent recenters
        it.  (With MX's d1 = 8 the clamp matches FP32's own exponent range,
        so in-range FP32 data never triggers it — hence 'future work'.)"""
        narrow = BDRConfig(m=4, k1=16, d1=4, s_type="pow2", k2=2, d2=1, ss_type="pow2")
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 256)) * 2.0**30
        two = BDRFormat(narrow).quantize(x)
        three = ThreeLevelFormat(narrow, k0=1024).quantize(x)
        assert qsnr(x, three) > qsnr(x, two) + 20.0

    def test_fp32_parent_scale_saturates(self):
        """Magnitudes beyond FP32's own range saturate the parent scale
        instead of overflowing to inf/nan."""
        x = np.full((1, 32), 1e60)
        out = ThreeLevelFormat(MX6).quantize(x)
        assert np.all(np.isfinite(out))

    def test_zero_input(self):
        fmt = ThreeLevelFormat(MX6)
        np.testing.assert_array_equal(fmt.quantize(np.zeros((2, 32))), 0.0)

    def test_delayed_scaling_state(self):
        fmt = ThreeLevelFormat(MX6, scaling="delayed")
        fmt.quantize(np.full((1, 32), 100.0))
        assert fmt._scaler.history_amax == 100.0
        fmt.reset_state()
        assert fmt._scaler.history_amax == 0.0
