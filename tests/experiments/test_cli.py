"""Unit tests for the command-line entry point."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out and "table3" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "10.1" in out
        assert "completed in" in out

    def test_unknown_experiment(self, capsys):
        assert main(["table99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_seed_flag(self, capsys):
        assert main(["table1", "--seed", "3"]) == 0
