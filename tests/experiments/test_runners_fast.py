"""Behaviour tests for the fast (analytical) experiment runners."""

import pytest

from repro.experiments import run_experiment


class TestFigure1:
    def test_exact_paper_values(self):
        result = run_experiment("figure1")
        by_strategy = {row["strategy"]: row for row in result.rows}
        assert by_strategy["pow2"]["measured_qsnr_db"] == pytest.approx(10.1)
        assert by_strategy["real"]["measured_qsnr_db"] == pytest.approx(15.2)
        # the two-level figure-2 example lands near the paper's 16.8
        assert 16.0 <= by_strategy["two_level"]["measured_qsnr_db"] <= 18.5
        # multi-scale always beats single pow2 scale
        assert (
            by_strategy["two_partition"]["measured_qsnr_db"]
            > by_strategy["real"]["measured_qsnr_db"]
            > by_strategy["pow2"]["measured_qsnr_db"]
        )


class TestTable1:
    def test_families_and_bits(self):
        result = run_experiment("table1")
        rows = {row["format"]: row for row in result.rows}
        assert rows["MX"]["bits/elem"] == 9.0
        assert rows["MX"]["s_type"] == "2^z" and rows["MX"]["ss_type"] == "2^z"
        assert rows["FP8"]["k2"] == 1
        assert rows["INT"]["scale"] == "SW"
        assert rows["MSFP/BFP"]["scale"] == "HW"


class TestTable2:
    def test_definitions_and_bound(self):
        result = run_experiment("table2", quick=True)
        assert [row["format"] for row in result.rows] == ["MX9", "MX6", "MX4"]
        for row in result.rows:
            assert row["k1"] == 16 and row["k2"] == 2
            assert row["d1"] == 8 and row["d2"] == 1
            assert row["qsnr_db"] >= row["theorem1_bound_db"]
        bits = [row["bits_per_element"] for row in result.rows]
        assert bits == [9.0, 6.0, 4.0]


class TestFigure3:
    def test_bfp_fine_grain_beats_coarse_int(self):
        result = run_experiment("figure3", quick=True)
        int_rows = [r for r in result.rows if r["family"].startswith("INT8")]
        bfp_rows = [r for r in result.rows if r["family"].startswith("BFP")]
        # QSNR degrades as k grows within each family
        assert int_rows[0]["qsnr_db"] > int_rows[-1]["qsnr_db"]
        assert bfp_rows[0]["qsnr_db"] > bfp_rows[-1]["qsnr_db"]
        # fine-grained BFP (k=16) beats the practical INT point (k=1024)
        bfp16 = next(r for r in bfp_rows if r["k"] == 16)
        int1k = next(r for r in int_rows if r["k"] == 1024)
        assert bfp16["qsnr_db"] > int1k["qsnr_db"]


class TestFigure6:
    def test_totals_and_shift_story(self):
        result = run_experiment("figure6")
        total = next(r for r in result.rows if r["stage"] == "TOTAL")
        assert total["mx4"] < total["mx6"] < total["mx9"]
        shift = next(r for r in result.rows if r["stage"] == "normalize shift")
        # per-element normalize shifting dominates in scalar FP8, not MX
        assert shift["fp8_e4m3"] > 10 * shift["mx9"]


class TestTheorem1:
    def test_bound_holds_everywhere(self):
        result = run_experiment("theorem1", quick=True)
        assert result.rows, "no rows produced"
        for row in result.rows:
            assert row["holds"] == "yes", row


class TestFigure7:
    def test_headline_relationships(self):
        result = run_experiment("figure7", quick=True)
        by_label = {row["format"]: row for row in result.rows}
        mx9, mx6, mx4 = by_label["MX9"], by_label["MX6"], by_label["MX4"]
        e4m3, e5m2 = by_label["FP8 - E4M3"], by_label["FP8 - E5M2"]
        msfp16 = by_label["MSFP16"]
        assert mx9["qsnr_db"] - e4m3["qsnr_db"] == pytest.approx(16.0, abs=3.0)
        assert e5m2["qsnr_db"] < mx6["qsnr_db"] < e4m3["qsnr_db"]
        assert mx9["qsnr_db"] - msfp16["qsnr_db"] == pytest.approx(3.6, abs=1.0)
        assert e4m3["cost"] / mx6["cost"] > 1.8
        assert e4m3["cost"] / mx4["cost"] > 3.5
        # the three MX points sit on the computed frontier
        assert mx4["on_frontier"] == "yes"
        assert mx6["on_frontier"] == "yes"
