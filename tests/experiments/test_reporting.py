"""Unit tests for experiment reporting and the registry."""

import pytest

from repro.experiments.registry import list_experiments, register, run_experiment
from repro.experiments.reporting import ExperimentResult, format_table


class TestExperimentResult:
    def test_add_row_and_column(self):
        r = ExperimentResult("x", "Title", ["a", "b"])
        r.add_row(a=1, b=2.5)
        r.add_row(a=3)
        assert r.column("a") == [1, 3]
        assert r.column("b") == [2.5, None]

    def test_format_table_alignment(self):
        r = ExperimentResult("x", "Demo", ["name", "value"])
        r.add_row(name="alpha", value=1.0)
        r.add_row(name="b", value=None)
        text = format_table(r)
        assert "Demo" in text
        assert "alpha" in text
        lines = text.splitlines()
        header_idx = next(i for i, l in enumerate(lines) if l.startswith("name"))
        widths = {len(l) for l in lines[header_idx : header_idx + 3]}
        assert len(widths) == 1  # aligned columns

    def test_notes_rendered(self):
        r = ExperimentResult("x", "T", ["a"], notes=["hello world"])
        assert "note: hello world" in str(r)

    def test_large_floats_scientific(self):
        r = ExperimentResult("x", "T", ["a"])
        r.add_row(a=123456.0)
        assert "e+" in format_table(r)


class TestRegistry:
    def test_known_experiments_registered(self):
        names = list_experiments()
        for expected in (
            "figure1", "figure3", "figure6", "figure7", "figure9",
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "theorem1", "correlation",
        ):
            assert expected in names

    def test_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("table99")

    def test_duplicate_registration(self):
        with pytest.raises(ValueError, match="already registered"):
            register("figure1")(lambda: None)
