"""Integration tests: the paper's central claims, in miniature.

These train real (tiny) models through the full quantized compute flow and
assert the qualitative results the paper reports.
"""

import numpy as np
import pytest

from repro.core.theorem import qsnr_lower_bound
from repro.core.mx import MX9
from repro.data.synthetic import ImageClasses, SyntheticLanguage
from repro.fidelity.qsnr import qsnr
from repro.flow.cast import clear_quantization, direct_cast
from repro.flow.compute_flow import TrainConfig, train_with_format
from repro.formats.registry import get_format
from repro.models.gpt import GPT, GPTConfig
from repro.models.vision import TinyViT, classification_accuracy


@pytest.fixture(scope="module")
def trained_pair():
    """One GPT trained twice — FP32 and MX9 — from identical conditions."""
    lang = SyntheticLanguage(seed=0)
    cfg = GPTConfig(dim=16, num_layers=1, num_heads=2)
    results = {}
    for fmt in (None, "mx9"):
        model = GPT(lang.vocab_size, cfg, rng=np.random.default_rng(1))
        train_with_format(
            model, lang.batches(8, 20, 50, seed=2), fmt, TrainConfig(steps=50, lr=3e-3)
        )
        results[fmt or "fp32"] = model.eval_loss(lang.batches(16, 20, 3, seed=99))
    return results


class TestMX9DropIn:
    def test_training_parity(self, trained_pair):
        """Table VII in miniature: MX9 LM loss == FP32 LM loss (tight)."""
        assert trained_pair["mx9"] == pytest.approx(trained_pair["fp32"], abs=0.02)


class TestDirectCast:
    @pytest.fixture(scope="class")
    def trained_vit(self):
        data = ImageClasses(noise=0.9, seed=0)
        model = TinyViT(dim=24, num_layers=2, num_heads=2, rng=np.random.default_rng(3))
        train_with_format(
            model, data.batches(32, 100, seed=4), None, TrainConfig(steps=100, lr=2e-3)
        )
        return model, data

    def test_mx9_cast_is_lossless_enough(self, trained_vit):
        model, data = trained_vit
        eval_batches = lambda: data.batches(128, 2, seed=98)
        baseline = classification_accuracy(model, eval_batches())
        direct_cast(model, "mx9")
        cast = classification_accuracy(model, eval_batches())
        clear_quantization(model)
        assert abs(cast - baseline) <= 2.0  # percentage points

    def test_mx4_cast_degrades_more_than_mx9(self, trained_vit):
        model, data = trained_vit
        eval_batches = lambda: data.batches(128, 2, seed=98)
        baseline = classification_accuracy(model, eval_batches())
        drops = {}
        for fmt in ("mx9", "mx4"):
            direct_cast(model, fmt)
            drops[fmt] = baseline - classification_accuracy(model, eval_batches())
            clear_quantization(model)
        assert drops["mx4"] >= drops["mx9"]


class TestTheoremOnRealTensors:
    def test_bound_holds_on_trained_weights(self, trained_pair):
        """Theorem 1 must hold on *real* model tensors, not just synthetic
        draws (the distribution-free claim)."""
        lang = SyntheticLanguage(seed=0)
        model = GPT(
            lang.vocab_size,
            GPTConfig(dim=16, num_layers=1, num_heads=2),
            rng=np.random.default_rng(7),
        )
        train_with_format(
            model, lang.batches(8, 20, 30, seed=8), None, TrainConfig(steps=30, lr=3e-3)
        )
        fmt = get_format("mx9")
        bound = qsnr_lower_bound(MX9, n=256)
        for name, param in model.named_parameters():
            if param.data.ndim < 2 or not np.any(param.data):
                continue
            q = fmt.quantize(param.data, axis=0)
            assert qsnr(param.data, q) >= bound, name


class TestFormatsDisagreeOnPurpose:
    def test_cast_levels_are_ordered(self):
        """Direct-cast logit perturbation grows as bits shrink."""
        lang = SyntheticLanguage(seed=0)
        model = GPT(
            lang.vocab_size,
            GPTConfig(dim=16, num_layers=1, num_heads=2),
            rng=np.random.default_rng(9),
        )
        tokens = next(iter(lang.batches(4, 16, 1, seed=10)))[:, :-1]
        baseline = model.forward(tokens).data
        deltas = {}
        for fmt in ("mx9", "mx6", "mx4"):
            direct_cast(model, fmt)
            deltas[fmt] = float(np.abs(model.forward(tokens).data - baseline).mean())
            clear_quantization(model)
        assert deltas["mx9"] < deltas["mx6"] < deltas["mx4"]
