"""The README's headline-claims table, enforced as tests.

Each assertion corresponds to a quantitative statement in the paper that
this reproduction must preserve (with tolerance for the substituted
substrates documented in DESIGN.md).
"""

import pytest

from repro.core.mx import MX4, MX6, MX9
from repro.core.theorem import qsnr_lower_bound
from repro.fidelity.qsnr import measure_qsnr
from repro.formats.registry import get_format
from repro.hardware.cost import hardware_cost

N_VECTORS = 3000


@pytest.fixture(scope="module")
def qsnrs():
    names = ("mx9", "mx6", "mx4", "fp8_e4m3", "fp8_e5m2", "msfp16", "msfp12")
    return {n: measure_qsnr(get_format(n), n_vectors=N_VECTORS) for n in names}


@pytest.fixture(scope="module")
def costs():
    names = ("mx9", "mx6", "mx4", "fp8_e4m3", "fp8_e5m2")
    return {n: hardware_cost(get_format(n)).area_memory_product for n in names}


class TestSection4Claims:
    def test_mx9_vs_e4m3_16db(self, qsnrs):
        """'the QSNR of MX9 is about 16 dB higher than FP8 (E4M3)'"""
        assert qsnrs["mx9"] - qsnrs["fp8_e4m3"] == pytest.approx(16.0, abs=3.0)

    def test_mx9_vs_msfp16_3_6db(self, qsnrs):
        """'MX9 has approximately 3.6 dB higher QSNR compared to MSFP16'"""
        assert qsnrs["mx9"] - qsnrs["msfp16"] == pytest.approx(3.6, abs=1.0)

    def test_mx6_between_fp8_variants(self, qsnrs):
        """'MX6's QSNR lies between the two FP8 variants E4M3 and E5M2'"""
        assert qsnrs["fp8_e5m2"] < qsnrs["mx6"] < qsnrs["fp8_e4m3"]

    def test_mx6_roughly_2x_cheaper_than_fp8(self, costs):
        """'approximately 2x advantage on the hardware cost'"""
        fp8 = (costs["fp8_e4m3"] + costs["fp8_e5m2"]) / 2
        assert 1.8 <= fp8 / costs["mx6"] <= 3.2

    def test_mx4_roughly_4x_cheaper_than_fp8(self, costs):
        """MX4: 'comparable and 4x lower area-memory cost, respectively'"""
        fp8 = (costs["fp8_e4m3"] + costs["fp8_e5m2"]) / 2
        assert fp8 / costs["mx4"] >= 3.5

    def test_mx9_comparable_to_fp8(self, costs):
        """'MX9 has a hardware efficiency close to that of FP8'"""
        fp8 = (costs["fp8_e4m3"] + costs["fp8_e5m2"]) / 2
        assert costs["mx9"] == pytest.approx(fp8, rel=0.4)

    def test_16db_is_roughly_two_mantissa_bits(self):
        """'A 16 dB higher fidelity is roughly equivalent to having 2 more
        mantissa bits' — 2 x 6.02 = 12.04 dB from the bound's linear term."""
        gap = qsnr_lower_bound(MX9) - qsnr_lower_bound(MX6)
        assert gap == pytest.approx(3 * 6.02, abs=0.01)  # 3 bits between m=7, m=4


class TestTheoremValues:
    def test_exact_bound_values(self):
        assert qsnr_lower_bound(MX9) == pytest.approx(34.74, abs=0.01)
        assert qsnr_lower_bound(MX6) == pytest.approx(16.68, abs=0.01)
        assert qsnr_lower_bound(MX4) == pytest.approx(4.64, abs=0.01)

    def test_measured_exceeds_bound(self, qsnrs):
        assert qsnrs["mx9"] >= qsnr_lower_bound(MX9)
        assert qsnrs["mx6"] >= qsnr_lower_bound(MX6)
        assert qsnrs["mx4"] >= qsnr_lower_bound(MX4)


class TestQsnrStructure:
    def test_linear_in_mantissa_6db_per_bit(self, qsnrs):
        """Figure 7: 'QSNR has a linear relation with the number of mantissa
        bits' — ~6 dB per bit between the MX members."""
        per_bit_96 = (qsnrs["mx9"] - qsnrs["mx6"]) / 3
        per_bit_64 = (qsnrs["mx6"] - qsnrs["mx4"]) / 2
        assert per_bit_96 == pytest.approx(6.02, abs=1.0)
        assert per_bit_64 == pytest.approx(6.02, abs=1.0)

    def test_microexponent_worth_more_than_its_cost(self, qsnrs):
        """MX9 vs MSFP16: the 1-bit-per-pair microexponent (+0.5 bits/elem)
        buys several dB — the paper's titular claim."""
        gain_db = qsnrs["mx9"] - qsnrs["msfp16"]
        extra_bits = 9.0 - 8.5
        assert gain_db / extra_bits > 4.0  # far better than ~6 dB/full bit
