"""SessionConfig: validation, canonicalization, JSON round-trips."""

import pickle

import pytest

from repro.spec import FirstLastHighPolicy, SessionConfig


class TestValidation:
    def test_defaults(self):
        config = SessionConfig()
        assert config.format is None
        assert config.max_batch == 8
        assert config.workers == 1
        assert config.freeze == "memo"

    def test_format_canonicalized(self):
        config = SessionConfig(format="MX6")
        assert config.format == "mx6"
        config = SessionConfig(format="bdr(k1=16, m=4, d1=8)")
        assert config.format == "bdr(m=4,k1=16,d1=8)"

    def test_unknown_format_rejected(self):
        with pytest.raises(Exception, match="mx7"):
            SessionConfig(format="mx7")

    def test_policy_accepts_spec_and_dict(self):
        policy = FirstLastHighPolicy(quant="mx4", high="mx9")
        a = SessionConfig(policy=policy)
        b = SessionConfig(policy=policy.to_dict())
        assert a.policy == b.policy == policy.to_dict()

    def test_policy_and_format_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            SessionConfig(format="mx6", policy=FirstLastHighPolicy(quant="mx4"))

    def test_activation_requires_format(self):
        with pytest.raises(ValueError, match="activation"):
            SessionConfig(activation="mx9")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait": -1.0},
            {"workers": 0},
            {"freeze": "nope"},
        ],
    )
    def test_bad_scalars(self, kwargs):
        with pytest.raises(ValueError):
            SessionConfig(**kwargs)

    def test_bad_policy_type(self):
        with pytest.raises(TypeError):
            SessionConfig(policy="mx6")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            SessionConfig(),
            SessionConfig(format="mx6", max_batch=16, max_wait=0.01, workers=2),
            SessionConfig(format="mx4", activation="mx9", freeze="cast",
                          quantize_embeddings=True),
            SessionConfig(policy=FirstLastHighPolicy(quant="mx4", high=None)),
        ],
    )
    def test_dict_and_json(self, config):
        assert SessionConfig.from_dict(config.to_dict()) == config
        assert SessionConfig.from_json(config.to_json()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SessionConfig.from_dict({"max_batchez": 2})

    def test_to_dict_detached_from_policy(self):
        config = SessionConfig(policy=FirstLastHighPolicy(quant="mx4"))
        payload = config.to_dict()
        payload["policy"]["kind"] = "mutated"
        assert config.policy["kind"] == "first_last_high"

    def test_pickles(self):
        config = SessionConfig(format="mx6", max_batch=4)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_replace(self):
        config = SessionConfig(format="mx6")
        patched = config.replace(max_batch=32)
        assert patched.max_batch == 32
        assert patched.format == "mx6"
        assert config.max_batch == 8

    def test_label(self):
        assert SessionConfig(format="mx6", max_batch=16).label == "mx6@b16x1w"
        assert SessionConfig().label == "fp32@b8x1w"
        assert "first_last_high" in SessionConfig(
            policy=FirstLastHighPolicy(quant="mx4")
        ).label

    def test_exported_from_repro_root(self):
        import repro

        assert repro.SessionConfig is SessionConfig
        assert repro.spec.SessionConfig is SessionConfig


def test_to_dict_deep_copies_nested_policy():
    """Mutating a nested role payload must not reach the frozen config."""
    config = SessionConfig(policy=FirstLastHighPolicy(quant="mx4"))
    payload = config.to_dict()
    payload["policy"]["quant"]["weight"] = "mx9"
    assert config.policy["quant"]["weight"] == "mx4"
