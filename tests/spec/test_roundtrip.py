"""Round-trip property tests: the acceptance bar for the spec layer.

For *every* registered name and for randomized ``bdr(...)`` points,
``parse -> render -> parse`` must be the identity on specs and the
reconstructed format must quantize **bit-identically** to the original.
"""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.formats.bdr_format import BDRFormat
from repro.formats.registry import get_format, list_formats
from repro.spec import as_format, format_to_spec, parse_spec, render_spec


def ensemble(seed=0, shape=(16, 256)):
    """Wide-dynamic-range batch exercising normals, subnormals and clamps."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape) * np.exp2(rng.integers(-12, 13, size=(shape[0], 1)))
    x[0, :4] = [0.0, 1.0, -1.0, 2.0**-20]
    return x


def quantize_stream(fmt, chunks):
    """Feed chunks sequentially (exercises delayed-scaling state)."""
    fmt.reset_state()
    return np.concatenate([fmt.quantize(c) for c in chunks])


@pytest.mark.parametrize("name", list_formats())
class TestEveryRegisteredName:
    def test_parse_render_parse_is_identity(self, name):
        spec = parse_spec(name)
        assert parse_spec(render_spec(spec)) == spec

    def test_reparsed_format_bit_identical(self, name):
        chunks = [ensemble(seed) for seed in (1, 2, 3)]
        original = quantize_stream(get_format(name), chunks)
        reparsed = quantize_stream(as_format(render_spec(parse_spec(name))), chunks)
        assert np.array_equal(original, reparsed)

    def test_format_to_spec_reconstructs_bit_identically(self, name):
        chunks = [ensemble(seed) for seed in (4, 5)]
        original = quantize_stream(get_format(name), chunks)
        rebuilt = quantize_stream(as_format(format_to_spec(get_format(name))), chunks)
        assert np.array_equal(original, rebuilt)


def random_bdr_specs(n=40, seed=123):
    """Randomized valid points across the whole BDR space."""
    rng = np.random.default_rng(seed)
    specs = []
    while len(specs) < n:
        m = int(rng.integers(1, 8))
        k1 = int(2 ** rng.integers(1, 8))
        d1 = int(rng.integers(4, 12))
        s = "pow2" if rng.random() < 0.7 else "fp32"
        if rng.random() < 0.5:
            k2, d2, ss = 1, 0, "none"
        else:
            divisors = [d for d in (1, 2, 4, 8, 16, 32) if k1 % d == 0 and d < k1]
            if not divisors:
                continue
            k2 = int(divisors[int(rng.integers(0, len(divisors)))])
            d2 = int(rng.integers(1, 4))
            ss = "pow2" if s == "pow2" or rng.random() < 0.5 else "int"
        try:
            BDRConfig(m=m, k1=k1, d1=d1, s_type=s, k2=k2, d2=d2, ss_type=ss)
        except ValueError:
            continue
        parts = [f"m={m}", f"k1={k1}", f"d1={d1}"]
        if s != "pow2":
            parts.append(f"s={s}")
        if ss != "none":
            parts += [f"k2={k2}", f"d2={d2}", f"ss={ss}"]
        specs.append("bdr(" + ",".join(parts) + ")")
    return specs


@pytest.mark.parametrize("text", random_bdr_specs())
class TestRandomizedBdrPoints:
    def test_round_trip(self, text):
        spec = parse_spec(text)
        canonical = render_spec(spec)
        assert parse_spec(canonical) == spec

        chunks = [ensemble(seed) for seed in (7, 8)]
        direct = quantize_stream(as_format(text), chunks)
        reparsed = quantize_stream(as_format(canonical), chunks)
        assert np.array_equal(direct, reparsed)

    def test_matches_bdr_format_class(self, text):
        spec = parse_spec(text)
        params = spec.param_dict
        config = BDRConfig(
            m=params["m"], k1=params["k1"], d1=params["d1"],
            s_type=params.get("s", "pow2"), k2=params.get("k2", 1),
            d2=params.get("d2", 0), ss_type=params.get("ss", "none"),
        )
        chunks = [ensemble(seed) for seed in (9, 10)]
        assert np.array_equal(
            quantize_stream(as_format(text), chunks),
            quantize_stream(BDRFormat(config), chunks),
        )
