"""Unit tests for the top-level facade and the spec-driven CLI commands."""

import numpy as np
import pytest

import repro
from repro.__main__ import main
from repro.formats.registry import get_format


class TestQuantizeFacade:
    def test_matches_registry(self):
        x = np.random.default_rng(0).normal(size=(4, 64))
        assert np.array_equal(repro.quantize(x, "mx6"), get_format("mx6").quantize(x))

    def test_family_string(self):
        x = np.random.default_rng(1).normal(size=(4, 64))
        assert np.array_equal(
            repro.quantize(x, "bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)"),
            get_format("mx6").quantize(x),
        )

    def test_axis_and_rounding_kwargs(self):
        x = np.random.default_rng(2).normal(size=(8, 16))
        assert np.array_equal(
            repro.quantize(x, "mx6", axis=0, rounding="truncate"),
            get_format("mx6").quantize(x, axis=0, rounding="truncate"),
        )

    def test_format_instance_passthrough(self):
        x = np.random.default_rng(3).normal(size=(2, 32))
        fmt = get_format("msfp16")
        assert np.array_equal(repro.quantize(x, fmt), fmt.quantize(x))


class TestSpecFacade:
    def test_parse_shape(self):
        assert repro.spec("mx6") == repro.parse_spec("mx6")

    def test_family_kwargs_shape(self):
        spec = repro.spec("bdr", m=4, k1=16, d1=8, scaling="jit")
        assert spec.base == "bdr"
        assert spec.param_dict == {"m": 4, "k1": 16, "d1": 8}
        assert spec.option_dict == {"scaling": "jit"}

    def test_reverse_maps_instances(self):
        assert repro.spec(get_format("fp32")).base == "fp32"

    def test_rejects_kwargs_on_non_string(self):
        with pytest.raises(TypeError):
            repro.spec(get_format("mx6"), m=4)

    def test_module_still_importable(self):
        # repro.spec the *function* shadows the subpackage attribute;
        # from-imports keep resolving the package via sys.modules
        from repro.spec import parse_spec as module_parse_spec

        assert module_parse_spec("mx6") == repro.parse_spec("mx6")

    def test_attribute_access_still_works(self):
        # the facade function mirrors the package's public names, so
        # `import repro.spec; repro.spec.parse_spec(...)` keeps working
        assert repro.spec.parse_spec("mx6") == repro.parse_spec("mx6")
        assert repro.spec.UniformPolicy is repro.UniformPolicy

    def test_submodule_attribute_access(self):
        # `import repro.spec.grammar; repro.spec.grammar.parse_spec(...)`
        import repro.spec.grammar  # noqa: F401

        assert repro.spec.grammar.parse_spec("mx6") == repro.parse_spec("mx6")
        assert repro.spec.policy.UniformPolicy is repro.UniformPolicy


class TestCliListFormats:
    def test_lists_every_name(self, capsys):
        assert main(["list-formats"]) == 0
        out = capsys.readouterr().out
        for name in ("mx6", "fp8_e4m3", "vsq8"):
            assert name in out


class TestCliDescribe:
    def test_named(self, capsys):
        assert main(["describe", "mx6"]) == 0
        out = capsys.readouterr().out
        assert "spec:      mx6" in out
        assert "bits/elem: 6.0000" in out
        assert "family mx" in out

    def test_family_spelling(self, capsys):
        assert main(["describe", "bdr(d1=8,k1=16,m=4)"]) == 0
        out = capsys.readouterr().out
        assert "bdr(m=4,k1=16,d1=8)" in out

    def test_bad_spec_is_error(self, capsys):
        assert main(["describe", "mx7"]) == 2
        assert "error" in capsys.readouterr().err


class TestCliQsnr:
    def test_reports_db(self, capsys):
        assert main(["qsnr", "mx6", "--n-vectors", "64"]) == 0
        out = capsys.readouterr().out
        assert "mx6:" in out and "dB" in out

    def test_value_matches_measure_qsnr(self, capsys):
        from repro.fidelity.qsnr import measure_qsnr

        assert main(["qsnr", "mx9", "--n-vectors", "128", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        expected = measure_qsnr("mx9", n_vectors=128, seed=5)
        assert f"{expected:.2f} dB" in out

    def test_bad_spec_is_error(self, capsys):
        assert main(["qsnr", "nope(x=1)"]) == 2
        assert "error" in capsys.readouterr().err


class TestCliExperimentsStillWork:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        assert "figure7" in capsys.readouterr().out
