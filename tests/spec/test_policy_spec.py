"""Unit tests for declarative PolicySpecs (JSON round-trip + compilation)."""

import json
import pickle

import numpy as np
import pytest

from repro.flow.policy import (
    apply_quant_policy,
    first_last_high_precision,
    quantizable_modules,
    uniform_policy,
)
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.quantized import QuantSpec
from repro.spec import (
    FirstLastHighPolicy,
    PolicyRule,
    PolicySpec,
    RulePolicy,
    UniformPolicy,
    policy_from_dict,
)


def build_mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(4, 8, rng=rng), ReLU(), Linear(8, 8, rng=rng), Linear(8, 2, rng=rng)
    )


class TestQuantPayloadNormalization:
    def test_string_is_uniform_shorthand(self):
        policy = UniformPolicy(quant="mx6")
        assert policy.quant == {
            "activation": "mx6", "weight": "mx6", "backward": "mx6",
            "rounding": "nearest",
        }

    def test_quantspec_instance(self):
        spec = QuantSpec.finetune("mx6")
        policy = UniformPolicy(quant=spec)
        assert policy.quant["backward"] is None
        assert policy.quant["weight"] == "mx6"

    def test_role_dict_canonicalizes_spellings(self):
        policy = UniformPolicy(quant={"weight": "MX6", "activation": "bdr(d1=8,k1=16,m=4)"})
        assert policy.quant["weight"] == "mx6"
        assert policy.quant["activation"] == "bdr(m=4,k1=16,d1=8)"
        assert policy.quant["backward"] is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown quant payload keys"):
            UniformPolicy(quant={"weights": "mx6"})


class TestJsonRoundTrip:
    POLICIES = [
        UniformPolicy(),
        UniformPolicy(quant="mx9", name="all-mx9"),
        FirstLastHighPolicy(quant="mx4", high="mx9"),
        RulePolicy(
            rules=(
                PolicyRule(quant="mx4", name_glob="layers.0*"),
                PolicyRule(quant="fp8_e4m3", layer_type="Linear"),
            ),
            default="mx9",
        ),
    ]

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.label)
    def test_json_round_trip(self, policy):
        text = policy.to_json()
        json.loads(text)  # valid JSON
        assert PolicySpec.from_json(text) == policy

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.label)
    def test_pickle_round_trip(self, policy):
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown policy kind"):
            policy_from_dict({"kind": "bogus"})

    def test_to_dict_never_aliases_internal_state(self):
        policy = UniformPolicy(quant="mx6")
        d = policy.to_dict()
        d["quant"]["weight"] = "mx4"
        assert policy.quant["weight"] == "mx6"


class TestCompilation:
    def test_uniform_matches_closure(self):
        a, b = build_mlp(), build_mlp()
        apply_quant_policy(a, uniform_policy(QuantSpec.uniform("mx6")))
        apply_quant_policy(b, UniformPolicy(quant="mx6"))
        for (_, ma), (_, mb) in zip(quantizable_modules(a), quantizable_modules(b)):
            assert ma.quant.weight.config == mb.quant.weight.config

    def test_uniform_none_clears(self):
        model = build_mlp()
        apply_quant_policy(model, UniformPolicy(quant="mx6"))
        apply_quant_policy(model, UniformPolicy())
        assert all(m.quant is None for _, m in quantizable_modules(model))

    def test_layers_share_one_compiled_spec(self):
        model = build_mlp()
        apply_quant_policy(model, UniformPolicy(quant="mx6"))
        specs = {id(m.quant) for _, m in quantizable_modules(model)}
        assert len(specs) == 1

    def test_first_last_matches_closure(self):
        a, b = build_mlp(), build_mlp()
        apply_quant_policy(
            a, first_last_high_precision(QuantSpec.uniform("mx4"), a)
        )
        apply_quant_policy(b, FirstLastHighPolicy(quant="mx4"))
        for (_, ma), (_, mb) in zip(quantizable_modules(a), quantizable_modules(b)):
            assert (ma.quant is None) == (mb.quant is None)

    def test_rule_glob(self):
        model = build_mlp()
        apply_quant_policy(
            model,
            RulePolicy(rules=(PolicyRule(quant="mx4", name_glob="layers.0*"),)),
        )
        mods = quantizable_modules(model)
        assert mods[0][1].quant is not None
        assert all(m.quant is None for _, m in mods[1:])

    def test_rule_layer_type(self):
        model = build_mlp()
        apply_quant_policy(
            model, RulePolicy(rules=(PolicyRule(quant="mx9", layer_type="Linear"),))
        )
        assert all(m.quant is not None for _, m in quantizable_modules(model))

    def test_first_matching_rule_wins(self):
        model = build_mlp()
        apply_quant_policy(
            model,
            RulePolicy(
                rules=(
                    PolicyRule(quant="mx4", name_glob="layers.0*"),
                    PolicyRule(quant="mx9", layer_type="Linear"),
                )
            ),
        )
        mods = quantizable_modules(model)
        assert mods[0][1].quant.weight.name == "MX4"
        assert mods[1][1].quant.weight.name == "MX9"

    def test_dict_form_accepted_by_apply(self):
        model = build_mlp()
        count = apply_quant_policy(model, UniformPolicy(quant="mx6").to_dict())
        assert count == 3
        assert all(m.quant is not None for _, m in quantizable_modules(model))

    def test_forward_results_identical_to_closure_policy(self):
        from repro.nn.tensor import Tensor

        x = np.random.default_rng(3).normal(size=(5, 4))
        a, b = build_mlp(), build_mlp()
        apply_quant_policy(a, uniform_policy(QuantSpec.uniform("mx6")))
        apply_quant_policy(b, UniformPolicy(quant="mx6"))
        assert np.array_equal(a(Tensor(x)).data, b(Tensor(x)).data)


class TrainableMLP(Sequential):
    """Sequential with the ``loss(batch)`` hook :func:`fit` expects."""

    def loss(self, batch):
        from repro.nn.losses import mse_loss
        from repro.nn.tensor import Tensor

        x, y = batch
        return mse_loss(self(Tensor(x)), y)


def build_trainable(seed=0):
    rng = np.random.default_rng(seed)
    return TrainableMLP(
        Linear(4, 8, rng=rng), ReLU(), Linear(8, 8, rng=rng), Linear(8, 2, rng=rng)
    )


class TestFinetuneWithPolicy:
    def test_policy_argument(self):
        from repro.flow.finetune import finetune

        model = build_trainable()
        rng = np.random.default_rng(0)
        batches = [
            (rng.normal(size=(8, 4)), rng.normal(size=(8, 2))) for _ in range(3)
        ]
        result = finetune(
            model, batches, steps=3, policy=FirstLastHighPolicy(quant="mx6")
        )
        assert len(result.losses) == 3
        mods = quantizable_modules(model)
        assert mods[0][1].quant is None and mods[1][1].quant is not None

    def test_requires_format_or_policy(self):
        from repro.flow.finetune import finetune

        with pytest.raises(ValueError, match="forward_format or policy"):
            finetune(build_trainable(), [], steps=1)
