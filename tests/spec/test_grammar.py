"""Unit tests for the FormatSpec mini-language."""

import numpy as np
import pytest

from repro.formats.base import Format
from repro.formats.registry import get_format
from repro.spec import (
    FormatSpec,
    PinnedRounding,
    SpecError,
    as_format,
    format_to_spec,
    parse_spec,
    render_spec,
)


def sample_tensor(seed=0, shape=(8, 256)):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape) * np.exp2(rng.integers(-6, 7, size=(shape[0], 1)))


class TestParse:
    def test_named_corner(self):
        spec = parse_spec("mx6")
        assert spec.base == "mx6"
        assert spec.params == () and spec.options == ()

    def test_name_normalization(self):
        assert parse_spec("MX6") == parse_spec("mx6")
        assert parse_spec("FP8 - E4M3") == parse_spec("fp8_e4m3")

    def test_family_params(self):
        spec = parse_spec("bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)")
        assert spec.is_family
        assert spec.param_dict == {
            "m": 4, "k1": 16, "d1": 8, "k2": 2, "d2": 1, "ss": "pow2"
        }

    def test_options(self):
        spec = parse_spec("mx9?rounding=stochastic&seed=7")
        assert spec.option_dict == {"rounding": "stochastic", "seed": 7}

    def test_param_order_is_irrelevant(self):
        a = parse_spec("mx(k1=16,m=4)")
        b = parse_spec("mx(m=4,k1=16)")
        assert a == b and hash(a) == hash(b)

    def test_dict_form(self):
        spec = parse_spec({"base": "mx", "params": {"m": 4}})
        assert spec == parse_spec("mx(m=4)")
        assert FormatSpec.from_dict(spec.to_dict()) == spec

    def test_format_instance_reverse_maps(self):
        assert parse_spec(get_format("mx6")).base == "bdr"

    @pytest.mark.parametrize(
        "bad",
        [
            "mx6(m=4)",            # params on a named corner
            "bdr(m=4)",            # missing required k1/d1
            "mx(m=4,zz=1)",        # unknown parameter
            "mx(m=four)",          # non-integer parameter
            "mx9?rounding=bogus",  # unknown rounding mode
            "bdr(m=4,k1=16,d1=8,s=fp64)",  # invalid scale type
            "mx(m=4)?bogus=1",     # unknown option (raised on build)
            "mx9?seed=7",          # seed without stochastic rounding
            "",                    # empty
            "mx(m=4",              # unbalanced parens
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises((SpecError, ValueError)):
            as_format(bad)

    def test_unknown_name_error_carries_suggestions(self):
        with pytest.raises(ValueError, match="did you mean"):
            parse_spec("mx7")

    def test_dict_with_params_on_named_base_rejected(self):
        # regression: params on a named base must not be silently dropped
        with pytest.raises(SpecError, match="named format"):
            parse_spec({"base": "mx6", "params": {"m": 2}})

    def test_dict_with_unknown_base_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            parse_spec({"base": "zzz"})

    def test_handbuilt_formatspec_validated_by_as_format(self):
        with pytest.raises(SpecError):
            as_format(FormatSpec(base="mx", params=(("zz", 1),)))


class TestRender:
    def test_canonical_is_fixed_point(self):
        for text in [
            "mx6",
            "bdr(d1=8,k1=16,m=4)",
            "vsq(bits=4,d2=8)?scaling=jit",
            "float(e=4,m=3,enc=fn)?window=8&scaling=delayed",
            "mx9?seed=7&rounding=stochastic",
        ]:
            canonical = render_spec(text)
            assert render_spec(canonical) == canonical
            assert parse_spec(canonical) == parse_spec(text)

    def test_family_params_render_in_declaration_order(self):
        assert render_spec("bdr(ss=pow2,d2=1,k2=2,d1=8,k1=16,m=4)") == (
            "bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)"
        )

    def test_options_render_sorted(self):
        assert render_spec("mx9?seed=3&rounding=stochastic") == (
            "mx9?rounding=stochastic&seed=3"
        )


class TestAsFormat:
    def test_passthrough_for_instances(self):
        fmt = get_format("mx6")
        assert as_format(fmt) is fmt

    def test_named_matches_registry_bit_identically(self):
        x = sample_tensor()
        assert np.array_equal(
            as_format("mx6").quantize(x), get_format("mx6").quantize(x)
        )

    def test_family_matches_class_constructor(self):
        from repro.formats.bdr_format import MXFormat

        x = sample_tensor()
        assert np.array_equal(
            as_format("mx(m=4)").quantize(x), MXFormat(m=4).quantize(x)
        )

    def test_scaling_option_forwards_to_factory(self):
        fmt = as_format("int8?scaling=jit")
        assert fmt.scaling == "jit"

    def test_inert_scaling_on_hardware_formats(self):
        x = sample_tensor()
        assert np.array_equal(
            as_format("mx9?scaling=delayed").quantize(x),
            get_format("mx9").quantize(x),
        )

    def test_fresh_instance_per_call(self):
        assert as_format("int8") is not as_format("int8")

    def test_float_family(self):
        fmt = as_format("float(e=4,m=3,enc=fn)")
        x = sample_tensor()
        assert np.array_equal(fmt.quantize(x), get_format("fp8_e4m3", scaling="none").quantize(x))


class TestPinnedRounding:
    def test_pin_beats_call_site(self):
        fmt = as_format("mx6?rounding=truncate")
        assert isinstance(fmt, PinnedRounding)
        x = sample_tensor()
        expected = get_format("mx6").quantize(x, rounding="truncate")
        assert np.array_equal(fmt.quantize(x, rounding="nearest"), expected)

    def test_stochastic_is_seeded_and_resettable(self):
        fmt = as_format("mx4?rounding=stochastic&seed=5")
        x = sample_tensor()
        first = fmt.quantize(x)
        fmt.reset_state()
        assert np.array_equal(fmt.quantize(x), first)

    def test_stochastic_not_memoizable(self):
        fmt = as_format("mx4?rounding=stochastic")
        assert fmt.cache_key() is None
        assert not fmt.is_stateless

    def test_bits_delegate(self):
        assert as_format("mx6?rounding=truncate").bits_per_element == 6.0

    def test_hardware_cost_unwraps_pin(self):
        from repro.hardware.cost import hardware_cost

        pinned = hardware_cost(as_format("mx9?rounding=stochastic"))
        plain = hardware_cost(get_format("mx9"))
        assert pinned.area_memory_product == plain.area_memory_product

    def test_inner_origin_excludes_call_options(self):
        fmt = as_format("mx9?rounding=stochastic&seed=7")
        assert format_to_spec(fmt.inner) == "mx9"
        assert format_to_spec(fmt) == "mx9?rounding=stochastic&seed=7"

    def test_sweep_accepts_pinned_specs(self):
        from repro.fidelity.sweep import run_sweep

        (point,) = run_sweep(configs=[], include_named=False,
                             formats=["mx9?rounding=stochastic"], n_vectors=50)
        assert point.cost > 0
        # classification reads through the wrapper; the Theorem 1 bound is
        # withheld (it assumes round-to-nearest)
        assert point.family == "mx"
        assert point.theorem_bound_db is None


class TestFormatToSpec:
    def test_identity(self):
        assert format_to_spec(get_format("fp32")) == "fp32"

    def test_as_format_origin_is_remembered(self):
        fmt = as_format("mx9?rounding=stochastic&seed=7")
        assert format_to_spec(fmt) == "mx9?rounding=stochastic&seed=7"

    def test_unrepresentable_raises(self):
        class Custom(Format):
            name = "custom"

            def quantize(self, x, axis=-1, rounding="nearest", rng=None):
                return x

            @property
            def bits_per_element(self):
                return 1.0

        with pytest.raises(SpecError, match="no spec-language spelling"):
            format_to_spec(Custom())
