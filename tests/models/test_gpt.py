"""Unit tests for the GPT family."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.flow.compute_flow import TrainConfig, fit
from repro.models.gpt import GPT, GPT_SIZES, GPTConfig, score_candidates
from repro.models.moe import MoEGPT


@pytest.fixture(scope="module")
def lang():
    return SyntheticLanguage(seed=0)


def tiny_gpt(lang, seed=0):
    return GPT(
        lang.vocab_size,
        GPTConfig(dim=16, num_layers=1, num_heads=2, max_len=64),
        rng=np.random.default_rng(seed),
    )


class TestForward:
    def test_logit_shape(self, lang):
        model = tiny_gpt(lang)
        logits = model.forward(np.zeros((2, 10), dtype=np.int64))
        assert logits.shape == (2, 10, lang.vocab_size)

    def test_max_len_enforced(self, lang):
        model = tiny_gpt(lang)
        with pytest.raises(ValueError, match="max_len"):
            model.forward(np.zeros((1, 100), dtype=np.int64))

    def test_causality(self, lang):
        """Changing a later token must not change earlier logits."""
        model = tiny_gpt(lang)
        tokens = np.arange(8)[None, :] % lang.vocab_size
        base = model.forward(tokens).data
        perturbed = tokens.copy()
        perturbed[0, -1] = (perturbed[0, -1] + 5) % lang.vocab_size
        out = model.forward(perturbed).data
        np.testing.assert_allclose(out[0, :-1], base[0, :-1], atol=1e-10)


class TestTraining:
    def test_loss_decreases(self, lang):
        model = tiny_gpt(lang, seed=1)
        result = fit(model, lang.batches(8, 16, 40, seed=2), TrainConfig(steps=40, lr=3e-3))
        assert result.losses[-1] < result.losses[0]

    def test_eval_loss_no_grad(self, lang):
        model = tiny_gpt(lang)
        loss = model.eval_loss(lang.batches(4, 16, 2, seed=3))
        assert np.isfinite(loss)
        assert all(p.grad is None for p in model.parameters())


class TestScoring:
    def test_sequence_logprob_negative(self, lang):
        model = tiny_gpt(lang)
        lp = model.sequence_logprob(np.array([1, 2, 3]), np.array([4, 5]))
        assert lp < 0

    def test_logprob_sums_over_continuation(self, lang):
        model = tiny_gpt(lang)
        ctx = np.array([1, 2, 3])
        one = model.sequence_logprob(ctx, np.array([4]))
        two = model.sequence_logprob(ctx, np.array([4, 5]))
        assert two < one  # adding tokens only decreases total logprob

    def test_score_candidates_returns_argmax(self, lang):
        model = tiny_gpt(lang)
        ctx = np.array([1, 2, 3])
        cands = [np.array([4]), np.array([5]), np.array([6])]
        idx = score_candidates(model, ctx, cands)
        scores = [model.sequence_logprob(ctx, c) for c in cands]
        assert idx == int(np.argmax(scores))


class TestSizes:
    def test_ladder_is_increasing(self, lang):
        counts = [
            GPT(lang.vocab_size, cfg, rng=np.random.default_rng(0)).num_parameters()
            for cfg in GPT_SIZES.values()
        ]
        assert counts == sorted(counts)


class TestMoE:
    def test_forward_and_loss(self, lang):
        model = MoEGPT(
            lang.vocab_size,
            GPTConfig(dim=16, num_layers=1, num_heads=2),
            num_experts=3,
            rng=np.random.default_rng(4),
        )
        batch = next(iter(lang.batches(4, 12, 1, seed=5)))
        loss = model.loss(batch)
        loss.backward()
        assert np.isfinite(float(loss.data))
        # every expert receives gradient through the soft gating
        for fc1 in model.blocks[0].moe.experts_fc1:
            assert fc1.weight.grad is not None

    def test_more_experts_more_params(self, lang):
        cfg = GPTConfig(dim=16, num_layers=1, num_heads=2)
        small = MoEGPT(lang.vocab_size, cfg, num_experts=2, rng=np.random.default_rng(0))
        big = MoEGPT(lang.vocab_size, cfg, num_experts=4, rng=np.random.default_rng(0))
        assert big.num_parameters() > small.num_parameters()
