"""Cached decode vs full-prefix recompute: the bit-identity contract.

For BDR-quantized models (the paper's formats) incremental decoding must
reproduce the full-recompute logits *bit for bit*, under both the fast
``numpy`` kernel backend and the ``reference`` oracle.  Pure-FP32 models
agree to BLAS kernel-selection noise (a (1, k) x (k, n) product may
accumulate in a different order than one row of an (m, k) x (k, n)
product), so they are asserted to near-machine tolerance instead; the
quantized exactness comes from low-mantissa products being exactly
representable in float64, making every dot product order-independent.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.flow.cast import direct_cast
from repro.kernels import use_backend
from repro.models.gpt import GPT, GPT_SIZES
from repro.models.moe import MoEGPT
from repro.models.translation import LSTMSeq2Seq, Seq2SeqTransformer
from repro.nn.decode import supports_cached_decode
from repro.nn.tensor import no_grad
from repro.serve.adapters import adapter_for

BACKENDS = ("numpy", "reference")


@pytest.fixture(scope="module")
def lang():
    return SyntheticLanguage(seed=0)


def make_gpt(lang, fmt):
    model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
    if fmt is not None:
        direct_cast(model, fmt)
    return model


# ----------------------------------------------------------------------
# Causal LM: per-step logits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fmt", ["mx6", "mx9"])
def test_gpt_step_logits_bit_identical(lang, backend, fmt):
    model = make_gpt(lang, fmt)
    tokens = (np.arange(48) * 7 + 1) % lang.vocab_size
    with use_backend(backend), no_grad():
        state = model.init_decode_state(batch=1)
        for t in range(4, 48):
            step = model.forward_step(tokens[None, :t], state)
            full = model.forward(tokens[None, :t])
            np.testing.assert_array_equal(
                step.data[0, -1], full.data[0, -1], err_msg=f"{fmt} t={t}"
            )


def test_gpt_fp32_step_logits_near_identical(lang):
    model = make_gpt(lang, None)
    tokens = (np.arange(32) * 5 + 2) % lang.vocab_size
    with no_grad():
        state = model.init_decode_state(batch=1)
        for t in range(4, 32):
            step = model.forward_step(tokens[None, :t], state)
            full = model.forward(tokens[None, :t])
            np.testing.assert_allclose(
                step.data[0, -1], full.data[0, -1], rtol=1e-11, atol=1e-12
            )


# ----------------------------------------------------------------------
# Greedy generation through the serving adapter
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_gpt_generate_stream_matches_full_recompute(lang, backend):
    model = make_gpt(lang, "mx6")
    adapter = adapter_for(model)
    prompt = (np.arange(20) * 3 + 1) % lang.vocab_size
    with use_backend(backend):
        cached = list(adapter.generate_stream(prompt, 24, use_cache=True))
        full = list(adapter.generate_stream(prompt, 24, use_cache=False))
    assert cached == full


def test_gpt_generate_eos_early_exit(lang):
    model = make_gpt(lang, "mx6")
    adapter = adapter_for(model)
    prompt = (np.arange(12) * 3 + 1) % lang.vocab_size
    full = list(adapter.generate_stream(prompt, 24, use_cache=False))
    eos = full[5]  # force an early exit on a token the model will emit
    a = list(adapter.generate_stream(prompt, 24, eos=eos, use_cache=False))
    b = list(adapter.generate_stream(prompt, 24, eos=eos, use_cache=True))
    assert a == b
    assert a[-1] == eos and len(a) <= 24


def test_gpt_prompt_longer_than_window(lang):
    """Sliding-window eviction: prompts beyond max_len rebuild the cache."""
    model = make_gpt(lang, "mx6")
    max_len = model.config.max_len
    adapter = adapter_for(model)
    prompt = (np.arange(max_len + 30) * 3 + 1) % lang.vocab_size
    a = list(adapter.generate_stream(prompt, 10, use_cache=False))
    b = list(adapter.generate_stream(prompt, 10, use_cache=True))
    assert a == b
    # generation that *crosses* the window boundary mid-stream
    near = prompt[: max_len - 4]
    a = list(adapter.generate_stream(near, 12, use_cache=False))
    b = list(adapter.generate_stream(near, 12, use_cache=True))
    assert a == b


def test_gpt_batch_decode_matches_serial(lang):
    model = make_gpt(lang, "mx6")
    adapter = adapter_for(model)
    prompts = np.stack(
        [(np.arange(16) * k + 3) % lang.vocab_size for k in (2, 3, 5, 7)]
    )
    serial = [list(adapter.generate_stream(p, 12, use_cache=False)) for p in prompts]
    assert adapter._greedy_batch(prompts, 12, eos=None, use_cache=True) == serial
    assert adapter._greedy_batch(prompts, 12, eos=None, use_cache=False) == serial
    # the adapter protocol path (mixed lengths -> grouped batches)
    items = [
        {"prompt": prompts[0], "max_new_tokens": 12},
        {"prompt": prompts[1][:10], "max_new_tokens": 12},
        {"prompt": prompts[2], "max_new_tokens": 12},
    ]
    results = adapter.generate(items)
    assert results[0]["tokens"] == serial[0]
    assert results[2]["tokens"] == serial[2]
    assert results[1]["tokens"] == list(
        adapter.generate_stream(prompts[1][:10], 12, use_cache=False)
    )


def test_moe_generate_matches_full_recompute(lang):
    from repro.models.gpt import GPTConfig

    model = MoEGPT(
        lang.vocab_size,
        GPTConfig(dim=16, num_layers=2, num_heads=2),
        num_experts=2,
        rng=np.random.default_rng(1),
    )
    direct_cast(model, "mx6")
    adapter = adapter_for(model)
    prompt = (np.arange(14) * 5 + 1) % lang.vocab_size
    a = list(adapter.generate_stream(prompt, 16, use_cache=False))
    b = list(adapter.generate_stream(prompt, 16, use_cache=True))
    assert a == b


# ----------------------------------------------------------------------
# Seq2seq families
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", [Seq2SeqTransformer, LSTMSeq2Seq])
def test_seq2seq_greedy_decode_matches_full_recompute(backend, family):
    model = family(24, rng=np.random.default_rng(2))
    direct_cast(model, "mx6")
    adapter = adapter_for(model)
    sources = np.stack([(np.arange(12) * k + 2) % 24 for k in (1, 2, 3, 4, 5)])
    with use_backend(backend):
        full = adapter.greedy_decode(sources, max_len=20, bos=1, eos=2, use_cache=False)
        cached = adapter.greedy_decode(sources, max_len=20, bos=1, eos=2, use_cache=True)
    assert cached == full


@pytest.mark.parametrize("family", [Seq2SeqTransformer, LSTMSeq2Seq])
def test_seq2seq_step_logits_bit_identical(family):
    """Not just tokens: the per-step distributions match exactly (mx6)."""
    model = family(24, rng=np.random.default_rng(3))
    direct_cast(model, "mx6")
    sources = np.stack([(np.arange(10) * k + 1) % 24 for k in (1, 3)])
    with no_grad():
        if isinstance(model, LSTMSeq2Seq):
            memory, enc_state = model.encode(sources)
            state = model.init_decode_state(enc_state)
            decode_full = lambda t_in: model.decode(t_in, memory, enc_state)
        else:
            memory = model.encode(sources)
            state = model.init_decode_state(batch=2, capacity=24)
            decode_full = lambda t_in: model.decode(t_in, memory)
        tokens = np.ones((2, 24), dtype=np.int64)
        for n in range(1, 24):
            step = model.decode_step(tokens[:, :n], memory, state)
            full = decode_full(tokens[:, :n])
            np.testing.assert_array_equal(step.data[:, -1], full.data[:, -1])


def test_seq2seq_fp32_near_identical():
    model = Seq2SeqTransformer(24, rng=np.random.default_rng(4))
    adapter = adapter_for(model)
    sources = np.stack([(np.arange(12) * k + 2) % 24 for k in (1, 2, 3)])
    full = adapter.greedy_decode(sources, max_len=16, bos=1, eos=2, use_cache=False)
    cached = adapter.greedy_decode(sources, max_len=16, bos=1, eos=2, use_cache=True)
    assert cached == full  # argmax robust to ~1 ulp accumulation noise


# ----------------------------------------------------------------------
# Gating: unsafe formats fall back to full recompute
# ----------------------------------------------------------------------
def test_stochastic_models_auto_fall_back(lang):
    model = make_gpt(lang, "mx6?rounding=stochastic")
    assert not supports_cached_decode(model)
    adapter = adapter_for(model)
    prompt = (np.arange(10) * 3 + 1) % lang.vocab_size
    # use_cache=None resolves to the full-recompute path for this model
    auto = list(adapter.generate_stream(prompt, 6))
    assert len(auto) == 6


def test_delayed_scaling_models_auto_fall_back(lang):
    model = make_gpt(lang, "int8")
    assert not supports_cached_decode(model)
