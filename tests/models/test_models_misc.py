"""Smoke + behaviour tests across the rest of the model zoo."""

import numpy as np
import pytest

from repro.data.synthetic import (
    CTRLogs,
    FrameAudio,
    GaussianMixture2D,
    ImageClasses,
    QACorpus,
    TranslationTask,
)
from repro.flow.compute_flow import TrainConfig, fit
from repro.models.bert import BertEncoder, BertQA
from repro.models.diffusion import DDPM2D, time_embedding
from repro.models.dlrm import DLRM, evaluate_ctr
from repro.models.speech import TinyWav2Vec, speech_wer
from repro.models.translation import LSTMSeq2Seq, Seq2SeqTransformer, greedy_decode
from repro.models.vision import TinyMobileNet, TinyResNet, TinyViT, classification_accuracy


class TestTranslationModels:
    @pytest.mark.parametrize("cls", [Seq2SeqTransformer, LSTMSeq2Seq])
    def test_loss_and_backward(self, cls):
        task = TranslationTask(seed=0)
        kwargs = {"dim": 16}
        if cls is Seq2SeqTransformer:
            kwargs.update(num_layers=1, num_heads=2)
        model = cls(task.vocab_size, rng=np.random.default_rng(1), **kwargs)
        batch = task.batch(4, np.random.default_rng(2))
        loss = model.loss(batch)
        loss.backward()
        assert np.isfinite(float(loss.data))

    def test_greedy_decode_terminates(self):
        task = TranslationTask(seed=0)
        model = Seq2SeqTransformer(
            task.vocab_size, dim=16, num_layers=1, num_heads=2,
            rng=np.random.default_rng(3),
        )
        src, _ = task.batch(3, np.random.default_rng(4))
        outputs = greedy_decode(model, src, max_len=12, bos=task.bos, eos=task.eos)
        assert len(outputs) == 3
        for out in outputs:
            assert len(out) <= 12
            assert task.eos not in out


class TestBertModels:
    def test_mlm_loss(self):
        corpus = QACorpus(seed=0)
        model = BertEncoder(corpus.vocab_size, dim=16, num_layers=1, num_heads=2,
                            rng=np.random.default_rng(5))
        batch = next(iter(corpus.mlm_batches(4, 1, seed=6)))
        loss = model.loss(batch)
        loss.backward()
        assert np.isfinite(float(loss.data))

    def test_masked_perplexity_at_init_near_vocab(self):
        corpus = QACorpus(vocab_size=48, seed=0)
        model = BertEncoder(corpus.vocab_size, dim=16, num_layers=1, num_heads=2,
                            rng=np.random.default_rng(7))
        ppl = model.masked_perplexity(corpus.mlm_batches(16, 2, seed=8))
        assert 10 < ppl < 200  # near-uniform at init

    def test_qa_span_prediction(self):
        corpus = QACorpus(seed=0)
        model = BertQA(corpus.vocab_size, dim=16, num_layers=1, num_heads=2,
                       rng=np.random.default_rng(9))
        tokens, _, _ = corpus.batch(4, np.random.default_rng(10))
        starts, ends = model.predict_spans(tokens)
        assert np.all(ends >= starts)
        assert np.all(starts >= 0) and np.all(ends < tokens.shape[1])


class TestVisionModels:
    @pytest.mark.parametrize("cls", [TinyResNet, TinyMobileNet, TinyViT])
    def test_forward_loss_backward(self, cls):
        data = ImageClasses(seed=0)
        model = cls(rng=np.random.default_rng(11))
        images, labels = data.sample(4, np.random.default_rng(12))
        loss = model.loss((images, labels))
        loss.backward()
        assert np.isfinite(float(loss.data))

    def test_accuracy_improves_with_training(self):
        data = ImageClasses(seed=0)
        model = TinyResNet(rng=np.random.default_rng(13))
        before = classification_accuracy(model, data.batches(64, 1, seed=99))
        fit(model, data.batches(32, 60, seed=14), TrainConfig(steps=60, lr=3e-3))
        after = classification_accuracy(model, data.batches(64, 1, seed=99))
        assert after > before + 20


class TestDiffusion:
    def test_time_embedding_shape(self):
        emb = time_embedding(np.arange(5), 16, 60)
        assert emb.shape == (5, 16)

    def test_unconditional_loss_and_sample(self):
        mix = GaussianMixture2D(seed=0)
        model = DDPM2D(num_classes=0, steps=20, rng=np.random.default_rng(15))
        pts, labels = mix.sample(32, np.random.default_rng(16))
        loss = model.loss((pts, labels))
        loss.backward()
        samples = model.sample(10, np.random.default_rng(17))
        assert samples.shape == (10, 2)
        assert np.all(np.isfinite(samples))

    def test_conditional_requires_labels(self):
        model = DDPM2D(num_classes=4, steps=10, rng=np.random.default_rng(18))
        with pytest.raises(ValueError, match="labels"):
            model.predict_noise(np.zeros((2, 2)), np.zeros(2, dtype=int), None)

    def test_training_tightens_distribution(self):
        from repro.metrics.fid import frechet_distance

        mix = GaussianMixture2D(seed=0)
        model = DDPM2D(num_classes=0, steps=40, rng=np.random.default_rng(19))
        ref, _ = mix.sample(400, np.random.default_rng(20))
        prior = np.random.default_rng(21).normal(size=(400, 2))
        prior_fid = frechet_distance(ref, prior)

        def batches():
            rng = np.random.default_rng(22)
            for _ in range(250):
                yield mix.sample(128, rng)

        fit(model, batches(), TrainConfig(steps=250, lr=3e-3))
        after = frechet_distance(ref, model.sample(400, np.random.default_rng(23)))
        # a trained DDPM lands far closer to the data than the N(0, I) prior
        assert after < prior_fid / 5
        assert after < 2.0


class TestSpeech:
    def test_loss_and_transcribe(self):
        audio = FrameAudio(seed=0)
        model = TinyWav2Vec(dim=16, num_layers=1, num_heads=2,
                            rng=np.random.default_rng(23))
        frames, labels = audio.sample(4, 20, np.random.default_rng(24))
        loss = model.loss((frames, labels))
        loss.backward()
        transcripts = model.transcribe(frames)
        assert len(transcripts) == 4

    def test_wer_improves_with_training(self):
        audio = FrameAudio(seed=0)
        model = TinyWav2Vec(dim=16, num_layers=1, num_heads=2,
                            rng=np.random.default_rng(25))
        before = speech_wer(model, audio.batches(8, 20, 2, seed=97))
        fit(model, audio.batches(8, 20, 50, seed=26), TrainConfig(steps=50, lr=3e-3))
        after = speech_wer(model, audio.batches(8, 20, 2, seed=97))
        assert after < before


class TestDLRM:
    @pytest.mark.parametrize("interaction", ["dot", "transformer", "dhen"])
    def test_variants_train(self, interaction):
        logs = CTRLogs(seed=0)
        model = DLRM(interaction=interaction, rng=np.random.default_rng(27))
        result = fit(model, logs.batches(64, 50, seed=28), TrainConfig(steps=50, lr=3e-3))
        assert result.losses[-1] < result.losses[0]

    def test_auc_above_chance_after_training(self):
        logs = CTRLogs(seed=0)
        model = DLRM(interaction="dot", rng=np.random.default_rng(29))
        fit(model, logs.batches(64, 80, seed=30), TrainConfig(steps=80, lr=3e-3))
        auc, ne = evaluate_ctr(model, logs.batches(512, 2, seed=96))
        assert auc > 0.6
        assert ne < 1.0

    def test_invalid_interaction(self):
        with pytest.raises(ValueError):
            DLRM(interaction="fm")

    def test_embedding_quantization_hook(self):
        from repro.formats.registry import get_format

        model = DLRM(rng=np.random.default_rng(31))
        model.quantize_embeddings(get_format("mx6"))
        assert all(e.storage_quant is not None for e in model.embeddings)
