"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    CTRLogs,
    FrameAudio,
    GaussianMixture2D,
    ImageClasses,
    QACorpus,
    SyntheticLanguage,
    TranslationTask,
)


class TestSyntheticLanguage:
    def test_tokens_in_vocab(self):
        lang = SyntheticLanguage(vocab_size=48, seed=0)
        seq = lang.sample_sequence(200, np.random.default_rng(1))
        assert seq.min() >= 0 and seq.max() < 48

    def test_deterministic_transition_matrix(self):
        a = SyntheticLanguage(seed=5)
        b = SyntheticLanguage(seed=5)
        np.testing.assert_array_equal(a.transition, b.transition)

    def test_batches_shape_and_count(self):
        lang = SyntheticLanguage(seed=0)
        batches = list(lang.batches(4, 16, 3, seed=2))
        assert len(batches) == 3
        assert batches[0].shape == (4, 17)

    def test_batches_reproducible(self):
        lang = SyntheticLanguage(seed=0)
        a = list(lang.batches(2, 8, 2, seed=7))
        b = list(lang.batches(2, 8, 2, seed=7))
        np.testing.assert_array_equal(a[0], b[0])

    def test_recall_patterns_present(self):
        lang = SyntheticLanguage(seed=0)
        seq = lang.sample_sequence(2000, np.random.default_rng(3))
        assert np.any(seq == lang.copy_token)
        assert np.any(seq == lang.query_token)

    def test_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            SyntheticLanguage(vocab_size=4)


class TestTranslationTask:
    def test_mapping_is_bijective(self):
        task = TranslationTask(seed=0)
        assert len(set(task.mapping)) == task.content

    def test_target_is_reversed_mapping(self):
        task = TranslationTask(seed=0)
        rng = np.random.default_rng(1)
        src, tgt = task.sample_pair(rng)
        assert tgt[0] == task.bos and tgt[-1] == task.eos
        expected = task.mapping[src - 2][::-1]
        np.testing.assert_array_equal(tgt[1:-1], expected)

    def test_batch_shapes(self):
        task = TranslationTask(seed=0)
        src, tgt = task.batch(8, np.random.default_rng(2), length=6)
        assert src.shape == (8, 6)
        assert tgt.shape == (8, 8)


class TestImageClasses:
    def test_sample_shapes(self):
        data = ImageClasses(num_classes=5, size=12, seed=0)
        x, y = data.sample(10, np.random.default_rng(1))
        assert x.shape == (10, 1, 12, 12)
        assert y.min() >= 0 and y.max() < 5

    def test_templates_distinguishable(self):
        data = ImageClasses(seed=0)
        flat = data.templates.reshape(data.num_classes, -1)
        gram = flat @ flat.T
        off_diag = gram - np.diag(np.diag(gram))
        assert np.abs(off_diag).max() < 0.9 * np.diag(gram).min()


class TestQACorpus:
    def test_answer_span_is_value_of_question_key(self):
        corpus = QACorpus(vocab_size=48, num_pairs=6, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(20):
            tokens, start, end = corpus.sample(rng)
            assert start == end
            question_key = tokens[-1]
            assert tokens[2 * question_key] == question_key  # canonical order
            assert tokens[start] == tokens[2 * question_key + 1]

    def test_batch_shapes(self):
        corpus = QACorpus(seed=0)
        tokens, starts, ends = corpus.batch(5, np.random.default_rng(2))
        assert tokens.shape == (5, corpus.passage_length)
        assert starts.shape == (5,)

    def test_mlm_batches(self):
        corpus = QACorpus(seed=0)
        corrupted, original, mask = next(iter(corpus.mlm_batches(8, 1, seed=3)))
        assert corrupted.shape == original.shape == mask.shape
        np.testing.assert_array_equal(corrupted[mask], corpus.mask_token)
        np.testing.assert_array_equal(corrupted[~mask], original[~mask])


class TestFrameAudio:
    def test_shapes_and_durations(self):
        audio = FrameAudio(seed=0)
        frames, labels = audio.sample(4, 30, np.random.default_rng(1))
        assert frames.shape == (4, 30, audio.frame_dim)
        assert labels.shape == (4, 30)
        # phones repeat for 2+ frames: fewer transitions than frames
        transitions = np.sum(labels[:, 1:] != labels[:, :-1])
        assert transitions < labels.size / 2


class TestCTRLogs:
    def test_shapes(self):
        logs = CTRLogs(seed=0)
        dense, cats, labels = logs.sample(100, np.random.default_rng(1))
        assert dense.shape == (100, logs.dense_dim)
        assert cats.shape == (100, len(logs.cardinalities))
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_cats_within_cardinality(self):
        logs = CTRLogs(seed=0)
        _, cats, _ = logs.sample(500, np.random.default_rng(2))
        for i, card in enumerate(logs.cardinalities):
            assert cats[:, i].max() < card

    def test_signal_exists(self):
        """Labels must correlate with the generating logit (learnable)."""
        logs = CTRLogs(seed=0)
        rng = np.random.default_rng(3)
        dense, cats, labels = logs.sample(20_000, rng)
        assert 0.1 < labels.mean() < 0.9


class TestGaussianMixture2D:
    def test_centers_on_ring(self):
        mix = GaussianMixture2D(num_components=8, radius=4.0)
        norms = np.linalg.norm(mix.centers, axis=1)
        np.testing.assert_allclose(norms, 4.0)

    def test_samples_near_centers(self):
        mix = GaussianMixture2D(sigma=0.1)
        pts, labels = mix.sample(500, np.random.default_rng(1))
        dist = np.linalg.norm(pts - mix.centers[labels], axis=1)
        assert dist.max() < 1.0
