"""Unit tests for the few-shot choice-task generators."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.data.tasks import TASK_FAMILIES, make_task, render_few_shot


@pytest.fixture(scope="module")
def lang():
    return SyntheticLanguage(seed=0)


class TestMakeTask:
    @pytest.mark.parametrize("family", TASK_FAMILIES)
    def test_examples_well_formed(self, lang, family):
        examples = make_task(family, lang, 20, seed=1)
        assert len(examples) == 20
        for ex in examples:
            assert 0 <= ex.answer < len(ex.candidates)
            assert len(ex.candidates) == 2
            assert ex.context.ndim == 1
            for cand in ex.candidates:
                assert cand.min() >= 0 and cand.max() < lang.vocab_size

    def test_reproducible(self, lang):
        a = make_task("recall", lang, 5, seed=3)
        b = make_task("recall", lang, 5, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.context, y.context)
            assert x.answer == y.answer

    def test_answer_positions_balanced(self, lang):
        examples = make_task("recall", lang, 200, seed=4)
        answers = [ex.answer for ex in examples]
        assert 0.3 < np.mean(answers) < 0.7  # shuffled, not always index 0

    def test_unknown_family(self, lang):
        with pytest.raises(ValueError, match="unknown task family"):
            make_task("trivia", lang, 5)

    def test_recall_gold_candidate_is_stored_value(self, lang):
        for ex in make_task("recall", lang, 50, seed=5):
            # context ends with [copy, value, query]; gold candidate == value
            stored = ex.context[-2]
            assert ex.candidates[ex.answer][0] == stored


class TestFewShot:
    def test_render_prepends_solved_examples(self, lang):
        examples = make_task("recall", lang, 3, seed=6)
        rendered = render_few_shot(examples[0], examples[1:], lang.separator)
        assert len(rendered.context) > len(examples[0].context)
        assert rendered.answer == examples[0].answer
        # original context forms the suffix
        np.testing.assert_array_equal(
            rendered.context[-len(examples[0].context):], examples[0].context
        )

    def test_zero_shots_is_identity(self, lang):
        examples = make_task("pattern", lang, 1, seed=7)
        rendered = render_few_shot(examples[0], [], lang.separator)
        np.testing.assert_array_equal(rendered.context, examples[0].context)
