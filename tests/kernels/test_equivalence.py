"""The kernel equivalence contract: the fast path is bit-exact vs reference.

Every backend must produce bit-for-bit identical dequantized values.  This
suite sweeps the full :func:`repro.fidelity.sweep.bdr_design_space` grid,
all rounding modes, non-divisible axis lengths (the padding path),
non-trailing axes, empty inputs, all-zero blocks, extreme dynamic ranges
(subnormal and near-overflow data), and the software-scaled INT/VSQ paths
with and without scale overrides.
"""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.quantize import bdr_quantize, bdr_quantize_detailed
from repro.core.rounding import ROUNDING_MODES
from repro.fidelity.sweep import bdr_design_space
from repro.kernels import use_backend

DESIGN_SPACE = bdr_design_space()

SOFTWARE_CONFIGS = [
    BDRConfig.int_sw(m=7, k1=64),
    BDRConfig.int_sw(m=3, k1=16),
    BDRConfig.int_sw(m=7, k1=1024),
    BDRConfig.vsq(m=5, d2=6, k1=64, k2=16),
    BDRConfig.vsq(m=3, d2=4, k1=32, k2=8),
    BDRConfig.vsq(m=7, d2=10, k1=1024, k2=16),
]

REPRESENTATIVE = [
    BDRConfig.mx(m=7),
    BDRConfig.mx(m=4),
    BDRConfig.mx(m=2),
    BDRConfig.bfp(m=7, k1=16),
    BDRConfig.bfp(m=3, k1=8),
] + SOFTWARE_CONFIGS


def both_backends(x, config, **kwargs):
    with use_backend("reference"):
        ref = bdr_quantize(x, config, **kwargs)
    with use_backend("numpy"):
        fast = bdr_quantize(x, config, **kwargs)
    return ref, fast


def assert_bit_exact(x, config, **kwargs):
    ref, fast = both_backends(x, config, **kwargs)
    np.testing.assert_array_equal(ref, fast, err_msg=config.label)


@pytest.mark.parametrize("config", DESIGN_SPACE, ids=lambda c: c.label)
def test_full_design_space_divisible(config):
    """Every pow2/pow2 grid point, divisible axis (the pure-view path)."""
    rng = np.random.default_rng(hash(config.label) % 2**32)
    x = rng.normal(size=(3, 4 * config.k1)) * np.exp2(
        rng.integers(-40, 40, size=(3, 1)).astype(np.float64)
    )
    assert_bit_exact(x, config)


@pytest.mark.parametrize("config", DESIGN_SPACE[:: 7], ids=lambda c: c.label)
def test_design_space_padding_path(config):
    """Non-divisible axis lengths exercise the zero-padding path."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3 * config.k1 + 1))
    assert_bit_exact(x, config)
    assert_bit_exact(rng.normal(size=(2, 13)), config)


@pytest.mark.parametrize("config", REPRESENTATIVE, ids=lambda c: c.label)
@pytest.mark.parametrize("mode", ROUNDING_MODES)
def test_rounding_modes(config, mode):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(4, 2 * config.k1 + 5))
    with use_backend("reference"):
        ref = bdr_quantize(x, config, rounding=mode, rng=np.random.default_rng(11))
    with use_backend("numpy"):
        fast = bdr_quantize(x, config, rounding=mode, rng=np.random.default_rng(11))
    np.testing.assert_array_equal(ref, fast, err_msg=f"{config.label} {mode}")


@pytest.mark.parametrize("config", REPRESENTATIVE, ids=lambda c: c.label)
@pytest.mark.parametrize("axis", [0, 1, 2])
def test_non_trailing_axes(config, axis):
    rng = np.random.default_rng(3)
    shape = [3, 4, 5]
    shape[axis] = 2 * config.k1 + 1  # blocks + padding along the chosen axis
    x = rng.normal(size=shape)
    assert_bit_exact(x, config, axis=axis)
    assert_bit_exact(x, config, axis=axis - 3)  # negative-axis spelling


@pytest.mark.parametrize("config", REPRESENTATIVE, ids=lambda c: c.label)
def test_empty_input(config):
    ref, fast = both_backends(np.zeros((0, 16)), config)
    assert ref.shape == fast.shape == (0, 16)


@pytest.mark.parametrize("config", REPRESENTATIVE, ids=lambda c: c.label)
def test_all_zero_blocks(config):
    x = np.zeros((3, 2 * config.k1))
    ref, fast = both_backends(x, config)
    np.testing.assert_array_equal(fast, 0.0)
    np.testing.assert_array_equal(ref, fast)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # deliberate inf/0 corners
@pytest.mark.parametrize("config", REPRESENTATIVE, ids=lambda c: c.label)
def test_mixed_zero_and_extreme_blocks(config):
    """Zero sub-blocks next to subnormal and near-overflow data."""
    rng = np.random.default_rng(4)
    x = rng.normal(size=(6, 2 * config.k1))
    x[0] = 0.0
    x[1] *= 1e-320  # subnormal magnitudes
    x[2] *= 1e307   # near the top of the exponent range
    x[3, : config.k1] = 0.0
    x[4] *= 1e-45
    assert_bit_exact(x, config)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # deliberate inf/NaN
@pytest.mark.parametrize("config", REPRESENTATIVE, ids=lambda c: c.label)
@pytest.mark.parametrize("poison", [np.inf, -np.inf, np.nan])
def test_non_finite_blocks_match_reference(config, poison):
    """Blocks holding inf/NaN must still match the reference path exactly
    (the fast backend hands them back to the reference engine)."""
    rng = np.random.default_rng(8)
    x = rng.normal(size=(3, 2 * config.k1))
    x[1, 1] = poison
    ref, fast = both_backends(x, config)
    np.testing.assert_array_equal(ref, fast, err_msg=config.label)
    # rows without the poison stay quantized normally
    clean_ref, clean_fast = both_backends(x[2:], config)
    np.testing.assert_array_equal(clean_ref, clean_fast)


@pytest.mark.parametrize(
    "config", SOFTWARE_CONFIGS, ids=lambda c: c.label
)
@pytest.mark.parametrize("override", [0.25, 1.0, 3.7e-3])
def test_scale_override_paths(config, override):
    """Delayed-scaling overrides: scalar stays a broadcast view throughout."""
    rng = np.random.default_rng(5)
    x = rng.normal(size=(2, 2 * config.k1))
    assert_bit_exact(x, config, scale_override=override)


@pytest.mark.parametrize("config", REPRESENTATIVE, ids=lambda c: c.label)
def test_detailed_decomposition_matches(config):
    rng = np.random.default_rng(6)
    x = rng.normal(size=(2, 2 * config.k1 + 3))
    with use_backend("reference"):
        ref = bdr_quantize_detailed(x, config)
    with use_backend("numpy"):
        fast = bdr_quantize_detailed(x, config)
    np.testing.assert_array_equal(ref.values, fast.values)
    np.testing.assert_array_equal(ref.codes, fast.codes)
    np.testing.assert_array_equal(ref.scale, fast.scale)
    np.testing.assert_array_equal(ref.step, fast.step)
    if ref.sub_scale is None:
        assert fast.sub_scale is None
    else:
        np.testing.assert_array_equal(ref.sub_scale, fast.sub_scale)


@pytest.mark.parametrize("config", DESIGN_SPACE[::5], ids=lambda c: c.label)
def test_partial_block_entry_bit_exact(config):
    """The decode-path partial-block entry == the generic quantize, on both
    backends, for every partial length up to one full block."""
    from repro.core.quantize import bdr_quantize_partial

    rng = np.random.default_rng(9)
    for length in {1, config.k1 // 2 or 1, config.k1}:
        x = rng.normal(size=(3, length)) * np.exp2(
            rng.integers(-40, 40, size=(3, 1)).astype(np.float64)
        )
        for backend in ("numpy", "reference"):
            with use_backend(backend):
                generic = bdr_quantize(x, config)
                partial = bdr_quantize_partial(x, config)
            np.testing.assert_array_equal(
                generic, partial, err_msg=f"{config.label} len={length} {backend}"
            )


def test_partial_block_entry_rejects_overlong_axis():
    from repro.core.quantize import bdr_quantize_partial

    config = BDRConfig.mx(m=4, k1=16)
    with pytest.raises(ValueError, match="k1"):
        bdr_quantize_partial(np.zeros((2, 17)), config)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # deliberate inf corner
def test_partial_block_nonfinite_falls_back_to_reference():
    from repro.core.quantize import bdr_quantize_partial

    config = BDRConfig.mx(m=4, k1=16)
    x = np.ones((2, 8))
    x[0, 3] = np.inf
    with use_backend("reference"):
        ref = bdr_quantize(x, config)
    with use_backend("numpy"):
        part = bdr_quantize_partial(x, config)
    np.testing.assert_array_equal(ref, part)


def test_small_array_plan_free_path_bit_exact():
    """Small inputs route through the plan-free kernel; still bit-exact."""
    rng = np.random.default_rng(10)
    for config in REPRESENTATIVE:
        for shape in [(1, 1, 24), (2, 3, 5), (1, config.k1 * 2 + 1)]:
            x = rng.normal(size=shape)
            assert_bit_exact(x, config)
            assert_bit_exact(x, config, axis=0)


def test_fast_values_match_detailed_reconstruction():
    """codes * step from the reference decomposition reproduces the fast
    path's dequantized values exactly."""
    rng = np.random.default_rng(7)
    config = BDRConfig.mx(m=4)
    x = rng.normal(size=(4, 64))
    with use_backend("reference"):
        detail = bdr_quantize_detailed(x, config)
    with use_backend("numpy"):
        fast = bdr_quantize(x, config)
    reconstructed = (detail.codes * detail.step).reshape(x.shape)
    np.testing.assert_array_equal(reconstructed, fast)
