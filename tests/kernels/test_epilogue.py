"""The kernel-layer matmul epilogue and execution-schedule variants."""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.formats.registry import get_format
from repro.kernels.base import EPILOGUES, gelu_reference
from repro.kernels.numpy_backend import NumpyBackend, set_legacy_schedule
from repro.kernels.plan import (
    checkout_scratch,
    clear_plan_cache,
    plan_cache_info,
    release_scratch,
)
from repro.kernels.reference import ReferenceBackend

NUMPY = NumpyBackend()
REFERENCE = ReferenceBackend()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMatmulEpilogue:
    @pytest.mark.parametrize("epilogue", [None, *EPILOGUES])
    @pytest.mark.parametrize("shape", [(4, 16), (3, 5, 16), (2, 3, 4, 16)])
    def test_fused_matches_reference(self, rng, shape, epilogue):
        a = rng.normal(size=shape)
        w = rng.normal(size=(16, 12))
        bias = rng.normal(size=12) if epilogue in ("bias", "bias_gelu") else None
        fused = NUMPY.matmul_epilogue(a, w, epilogue, bias)
        oracle = REFERENCE.matmul_epilogue(a, w, epilogue, bias)
        np.testing.assert_array_equal(fused, oracle)

    def test_reference_is_the_unfused_sequence(self, rng):
        a = rng.normal(size=(5, 8))
        w = rng.normal(size=(8, 6))
        bias = rng.normal(size=6)
        out = REFERENCE.matmul_epilogue(a, w, "bias_gelu", bias)
        np.testing.assert_array_equal(out, gelu_reference(a @ w + bias))

    def test_gelu_reference_matches_functional(self, rng):
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor

        x = rng.normal(size=(4, 9))
        np.testing.assert_array_equal(gelu_reference(x), F.gelu(Tensor(x)).data)

    def test_quantized_operands(self, rng):
        fmt = get_format("mx6")
        a = fmt.quantize(rng.normal(size=(6, 32)), axis=-1)
        w = fmt.quantize(rng.normal(size=(32, 8)), axis=0)
        bias = rng.normal(size=8)
        np.testing.assert_array_equal(
            NUMPY.matmul_epilogue(a, w, "bias_gelu", bias),
            REFERENCE.matmul_epilogue(a, w, "bias_gelu", bias),
        )

    @pytest.mark.parametrize("backend", [NUMPY, REFERENCE])
    def test_unknown_epilogue_rejected(self, rng, backend):
        a, w = rng.normal(size=(2, 4)), rng.normal(size=(4, 3))
        with pytest.raises(ValueError, match="unknown epilogue"):
            backend.matmul_epilogue(a, w, "bias_relu", np.zeros(3))

    @pytest.mark.parametrize("backend", [NUMPY, REFERENCE])
    def test_bias_epilogue_requires_bias(self, rng, backend):
        a, w = rng.normal(size=(2, 4)), rng.normal(size=(4, 3))
        with pytest.raises(ValueError, match="requires a bias"):
            backend.matmul_epilogue(a, w, "bias", None)


class TestScratchPool:
    def test_checkout_release_roundtrip(self):
        clear_plan_cache()
        buf = checkout_scratch((7, 5))
        assert buf.shape == (7, 5) and buf.dtype == np.float64
        release_scratch(buf)
        info = plan_cache_info()
        assert info["pool_buffers"] == 1
        again = checkout_scratch((7, 5))
        assert again is buf  # pooled buffer reused
        release_scratch(again)
        clear_plan_cache()

    def test_distinct_shapes_do_not_collide(self):
        clear_plan_cache()
        a = checkout_scratch((3, 4))
        b = checkout_scratch((4, 3))
        assert a.shape != b.shape
        release_scratch(a)
        release_scratch(b)
        assert plan_cache_info()["pool_shapes"] == 2
        clear_plan_cache()
        assert plan_cache_info()["pool_buffers"] == 0

    def test_scratch_bytes_never_negative(self):
        clear_plan_cache()
        bufs = [checkout_scratch((64, 64)) for _ in range(6)]
        for buf in bufs:
            release_scratch(buf)
        info = plan_cache_info()
        assert 0 <= info["scratch_bytes"] <= info["max_scratch_bytes"]
        clear_plan_cache()
        assert plan_cache_info()["scratch_bytes"] >= 0


class TestScheduleVariants:
    @pytest.mark.parametrize("name", ["mx4", "mx6", "mx9", "msfp12", "msfp16"])
    @pytest.mark.parametrize(
        "shape,axis", [((8, 64), -1), ((4, 8, 24), -1), ((3, 40, 7), 1), ((512, 96), -1)]
    )
    def test_legacy_schedule_bit_identical(self, rng, name, shape, axis):
        """The pre-residency kernel body must agree with the current one."""
        fmt = get_format(name)
        x = rng.normal(size=shape)
        current = fmt.quantize(x, axis=axis)
        previous = set_legacy_schedule(True)
        try:
            legacy = fmt.quantize(x, axis=axis)
        finally:
            set_legacy_schedule(previous)
        np.testing.assert_array_equal(current, legacy)

    @pytest.mark.parametrize("name", ["mx6", "mx9", "msfp12"])
    def test_tiled_large_call_bit_identical(self, rng, name):
        """Tiling along a batch axis cannot change fiber-local results."""
        fmt = get_format(name)
        x = rng.normal(size=(16, 128, 96))  # well past the tile threshold
        fast = NUMPY.quantize(x, fmt.config, -1, "nearest", None, None, False)
        oracle = REFERENCE.quantize(x, fmt.config, -1, "nearest", None, None, False)
        np.testing.assert_array_equal(fast, oracle)

    def test_tiled_nonfinite_chunk_falls_back(self, rng):
        """A chunk holding inf/NaN delegates that chunk to the oracle."""
        fmt = get_format("mx6")
        x = rng.normal(size=(16, 128, 96))
        x[11, 3, 5] = np.inf
        x[2, 0, 0] = np.nan
        fast = NUMPY.quantize(x, fmt.config, -1, "nearest", None, None, False)
        oracle = REFERENCE.quantize(x, fmt.config, -1, "nearest", None, None, False)
        np.testing.assert_array_equal(fast, oracle)

    def test_shifted_clip_saturates_exactly(self):
        """Values past the top code clamp to qmax * step, as before."""
        config = BDRConfig.mx(m=4, k1=16, k2=2, d1=8, d2=1)
        x = np.zeros((1, 16))
        x[0, 0] = 3.0
        x[0, 1] = 2.9999999
        fast = NUMPY.quantize(x, config, -1, "nearest", None, None, False)
        oracle = REFERENCE.quantize(x, config, -1, "nearest", None, None, False)
        np.testing.assert_array_equal(fast, oracle)
