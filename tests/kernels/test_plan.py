"""Unit tests for the QuantPlan cache and its blocking geometry."""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.quantize import bdr_quantize
from repro.kernels import clear_plan_cache, get_plan, plan_cache_info, use_backend
from repro.kernels.plan import MAX_PLANS, QuantPlan


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestGeometry:
    def test_divisible_trailing_axis_is_pure_view(self):
        plan = QuantPlan((4, 64), axis=-1, k1=16, k2=2)
        assert plan.pad == 0 and not plan.needs_move
        x = np.arange(256, dtype=np.float64).reshape(4, 64)
        blocked = plan.block(x)
        assert blocked.base is not None  # a view, not a copy
        assert np.shares_memory(blocked, x)
        assert blocked.shape == (4, 4, 16)

    def test_padding_geometry(self):
        plan = QuantPlan((2, 13), axis=-1, k1=8, k2=2)
        assert plan.pad == 3
        x = np.ones((2, 13))
        blocked = plan.block(x)
        assert blocked.shape == (2, 2, 8)
        np.testing.assert_array_equal(blocked[..., -1, -3:], 0.0)

    def test_block_restore_roundtrip(self):
        rng = np.random.default_rng(0)
        for shape, axis, k1 in [((4, 64), -1, 16), ((13, 5), 0, 8),
                                ((3, 7, 10), 1, 4), ((2, 13), -1, 8)]:
            plan = QuantPlan(shape, axis, k1, 1)
            x = rng.normal(size=shape)
            roundtrip = plan.restore(plan.block(x).copy())
            np.testing.assert_array_equal(roundtrip, x)

    def test_sub_shape(self):
        plan = QuantPlan((4, 64), axis=-1, k1=16, k2=2)
        assert plan.sub_shape == (4, 4, 8, 2)


class TestCache:
    def test_repeated_calls_hit(self):
        a = get_plan((4, 64), -1, 16, 2, np.float64)
        b = get_plan((4, 64), -1, 16, 2, np.float64)
        assert a is b
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_distinct_keys_miss(self):
        get_plan((4, 64), -1, 16, 2, np.float64)
        get_plan((4, 64), -1, 16, 4, np.float64)
        get_plan((4, 64), 0, 16, 2, np.float64)
        get_plan((8, 64), -1, 16, 2, np.float64)
        assert plan_cache_info()["misses"] == 4

    def test_negative_axis_normalized(self):
        a = get_plan((4, 64), -1, 16, 2, np.float64)
        b = get_plan((4, 64), 1, 16, 2, np.float64)
        assert a is b

    def test_lru_eviction_bounded(self):
        for n in range(MAX_PLANS + 10):
            get_plan((1, 16 * (n + 1)), -1, 16, 2, np.float64)
        assert plan_cache_info()["size"] == MAX_PLANS

    def test_quantize_populates_cache(self):
        # large enough to clear the small-array plan-free path
        x = np.random.default_rng(1).normal(size=(256, 64))
        config = BDRConfig.mx(m=4)
        with use_backend("numpy"):
            bdr_quantize(x, config)
            first = plan_cache_info()
            bdr_quantize(x, config)
            second = plan_cache_info()
        assert first["misses"] == second["misses"] == 1
        assert second["hits"] == first["hits"] + 1


class TestScratchCheckout:
    def test_checkout_release_reuses_buffer(self):
        plan = QuantPlan((4, 64), -1, 16, 2)
        buf = plan.checkout()
        plan.release(buf)
        assert plan.checkout() is buf

    def test_concurrent_checkout_allocates(self):
        """Reentrant use degrades to allocation, never aliasing."""
        plan = QuantPlan((4, 64), -1, 16, 2)
        first = plan.checkout()
        second = plan.checkout()
        assert first is not second

    def test_scratch_accounting_survives_eviction_while_checked_out(self):
        """Regression: a buffer released onto a plan that was LRU-evicted
        mid-flight must not inflate the global scratch accounting."""
        plan = get_plan((4, 64), -1, 16, 2, np.float64)
        buf = plan.checkout()
        for n in range(MAX_PLANS + 5):  # churn the plan out of the LRU
            get_plan((2, 16 * (n + 1)), -1, 16, 2, np.float64)
        assert not plan._tracked
        before = plan_cache_info()["scratch_bytes"]
        plan.release(buf)
        assert plan_cache_info()["scratch_bytes"] == before

    def test_untracked_plan_still_reuses_scratch(self):
        plan = QuantPlan((4, 64), -1, 16, 2)
        buf = plan.checkout()
        plan.release(buf)
        assert plan.checkout() is buf
        assert plan_cache_info()["scratch_bytes"] == 0

    def test_scratch_never_aliases_results(self):
        """Back-to-back quantizations must not overwrite earlier outputs."""
        rng = np.random.default_rng(2)
        config = BDRConfig.mx(m=7)
        x1, x2 = rng.normal(size=(2, 8, 64))
        with use_backend("numpy"):
            q1 = bdr_quantize(x1, config)
            snapshot = q1.copy()
            bdr_quantize(x2, config)
        np.testing.assert_array_equal(q1, snapshot)
