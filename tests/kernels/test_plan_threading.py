"""Thread-safety of the plan LRU, scratch checkout, and scratch pool.

The contention regression test for serving: ``InferenceSession`` workers
drive the kernel subsystem from several threads at once, so concurrent
``get_plan``/``checkout``/``release``/``checkout_scratch`` traffic — and
even a hostile ``clear_plan_cache`` mid-flight — must never corrupt
results or the scratch-byte accounting.
"""

import threading

import numpy as np
import pytest

from repro.formats.registry import get_format
from repro.kernels.plan import (
    checkout_scratch,
    clear_plan_cache,
    plan_cache_info,
    release_scratch,
)

N_THREADS = 8
ITERATIONS = 40


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _run_threads(worker):
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
    errors = []

    def wrapped(i):
        try:
            worker(i)
        except BaseException as err:  # noqa: BLE001
            errors.append(err)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestConcurrentQuantization:
    def test_shared_shapes_identical_to_serial(self):
        """N threads hammering the same plan produce serial results."""
        fmt = get_format("mx6")
        rng = np.random.default_rng(0)
        inputs = [rng.normal(size=(8, 16, 32)) for _ in range(N_THREADS)]
        expected = [fmt.quantize(x, axis=-1) for x in inputs]
        clear_plan_cache()
        results = [None] * N_THREADS

        def worker(i):
            out = None
            for _ in range(ITERATIONS):
                out = fmt.quantize(inputs[i], axis=-1)
            results[i] = out

        _run_threads(worker)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)

    def test_mixed_formats_and_shapes_under_contention(self):
        # stateless formats only: delayed-scaling families (int8/vsq) are
        # history-dependent by design, so repeated calls legitimately differ
        fmts = [get_format(n) for n in ("mx6", "mx9", "msfp12", "mx4")]
        rng = np.random.default_rng(1)
        inputs = [rng.normal(size=(4, 8 * (i + 1), 32)) for i in range(N_THREADS)]
        expected = [
            fmts[i % len(fmts)].quantize(x, axis=-1) for i, x in enumerate(inputs)
        ]

        def worker(i):
            fmt = fmts[i % len(fmts)]
            for _ in range(ITERATIONS):
                out = fmt.quantize(inputs[i], axis=-1)
                np.testing.assert_array_equal(out, expected[i])

        _run_threads(worker)
        info = plan_cache_info()
        assert 0 <= info["scratch_bytes"] <= info["max_scratch_bytes"]
        assert info["size"] <= info["max_size"]

    def test_clear_cache_mid_flight_is_safe(self):
        """An admin clearing the cache under live traffic loses no bits."""
        fmt = get_format("mx6")
        rng = np.random.default_rng(2)
        x = rng.normal(size=(8, 16, 32))
        expected = fmt.quantize(x, axis=-1)
        stop = threading.Event()

        def clearer():
            while not stop.is_set():
                clear_plan_cache()

        chaos = threading.Thread(target=clearer)
        chaos.start()
        try:

            def worker(i):
                for _ in range(ITERATIONS):
                    np.testing.assert_array_equal(fmt.quantize(x, axis=-1), expected)

            _run_threads(worker)
        finally:
            stop.set()
            chaos.join()
        info = plan_cache_info()
        assert info["scratch_bytes"] >= 0


class TestConcurrentScratchPool:
    def test_no_buffer_served_twice_concurrently(self):
        """Checked-out buffers are exclusive; accounting stays consistent."""
        live = set()
        lock = threading.Lock()

        def worker(i):
            for _ in range(ITERATIONS * 5):
                buf = checkout_scratch((32, 32))
                with lock:
                    assert id(buf) not in live, "scratch buffer double-served"
                    live.add(id(buf))
                buf.fill(i)  # would corrupt a co-owner if shared
                with lock:
                    live.discard(id(buf))
                release_scratch(buf)

        _run_threads(worker)
        info = plan_cache_info()
        assert 0 <= info["scratch_bytes"] <= info["max_scratch_bytes"]


class TestSessionContention:
    def test_threaded_sessions_share_one_compiled_model(self):
        """The serving regression: concurrent workers, bit-identical scores."""
        from repro.data.synthetic import SyntheticLanguage
        from repro.data.tasks import make_task
        from repro.models.gpt import GPT, GPT_SIZES
        from repro.serve.compile import compile_model

        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, GPT_SIZES["GPT-XS"], rng=np.random.default_rng(0))
        compiled = compile_model(model, "mx6")
        examples = make_task("recall", lang, n_examples=8, seed=1)
        requests = [
            {"task": "score", "context": ex.context, "candidates": ex.candidates}
            for ex in examples
        ]
        expected = compiled.run(requests)
        with compiled.session(max_batch=4, workers=4, max_wait=0.001) as session:
            futures = [session.submit(r) for r in requests * 4]
            results = [f.result(timeout=30) for f in futures]
        for i, result in enumerate(results):
            assert result == expected[i % len(expected)]
