"""Backend registry: selection precedence, env var, context manager."""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.quantize import bdr_quantize
from repro.kernels import (
    ENV_VAR,
    get_backend,
    list_backends,
    set_backend,
    use_backend,
)
from repro.kernels.numpy_backend import NumpyBackend
from repro.kernels.reference import ReferenceBackend


@pytest.fixture(autouse=True)
def reset_override():
    previous = set_backend(None)
    yield
    set_backend(previous)


def test_both_backends_registered():
    assert {"numpy", "reference"} <= set(list_backends())


def test_default_is_numpy(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert isinstance(get_backend(), NumpyBackend)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "reference")
    assert isinstance(get_backend(), ReferenceBackend)


def test_env_var_is_case_insensitive(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "Reference")
    assert isinstance(get_backend(), ReferenceBackend)


def test_programmatic_override_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "reference")
    set_backend("numpy")
    assert isinstance(get_backend(), NumpyBackend)


def test_use_backend_restores_previous():
    set_backend("numpy")
    with use_backend("reference") as backend:
        assert isinstance(backend, ReferenceBackend)
        assert isinstance(get_backend(), ReferenceBackend)
    assert isinstance(get_backend(), NumpyBackend)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        set_backend("cuda")
    with pytest.raises(ValueError, match="known backends"):
        get_backend("nope")


def test_dispatch_respects_selection():
    """bdr_quantize actually routes through the selected backend."""
    x = np.random.default_rng(0).normal(size=(4, 32))
    config = BDRConfig.mx(m=4)
    calls = []

    class Spy(ReferenceBackend):
        def quantize(self, *args, **kwargs):
            calls.append(1)
            return super().quantize(*args, **kwargs)

    from repro.kernels import registry

    spy = Spy()
    registry._BACKENDS["spy"] = spy
    try:
        with use_backend("spy"):
            bdr_quantize(x, config)
        assert calls
    finally:
        registry._BACKENDS.pop("spy")
